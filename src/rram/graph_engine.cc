#include "graph_engine.hh"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "common/logging.hh"

namespace graphr
{

GraphEngineArray::GraphEngineArray(std::uint32_t crossbar_dim,
                                   std::uint32_t num_crossbars,
                                   const DeviceParams &params,
                                   EnergyLedger &ledger)
    : crossbarDim_(crossbar_dim), params_(params), ledger_(ledger)
{
    GRAPHR_ASSERT(num_crossbars > 0, "need >= 1 crossbar");
    crossbars_.reserve(num_crossbars);
    for (std::uint32_t i = 0; i < num_crossbars; ++i)
        crossbars_.emplace_back(crossbar_dim, params);
    present_.assign(static_cast<std::size_t>(crossbarDim_) * tileWidth(),
                    false);
    crossbarNnz_.assign(crossbars_.size(), 0);
}

void
GraphEngineArray::clearProgrammedState()
{
    for (std::size_t cb = 0; cb < crossbars_.size(); ++cb) {
        if (crossbarNnz_[cb] == 0)
            continue;
        crossbars_[cb].clear();
        crossbarNnz_[cb] = 0;
    }
    std::fill(present_.begin(), present_.end(), false);
}

bool
GraphEngineArray::presentAt(std::uint32_t row, std::uint64_t col) const
{
    return present_[static_cast<std::size_t>(row) * tileWidth() + col];
}

TileActivity
GraphEngineArray::programTile(std::span<const Edge> edges,
                              std::uint64_t row0, std::uint64_t col0,
                              int weight_frac_bits, CombineMode combine)
{
    clearProgrammedState();

    GRAPHR_ASSERT(crossbarDim_ <= 64,
                  "row bitmap supports crossbars up to 64x64");
    TileActivity activity;
    // Per-crossbar row bitmap to account serial row writes.
    std::vector<std::uint64_t> rows_touched(crossbars_.size(), 0);

    // A crossbar cell holds one value: merge parallel edges first
    // (sum for additive reduces, min for relaxation).
    std::unordered_map<std::uint64_t, double> cells;
    cells.reserve(edges.size());
    for (const Edge &e : edges) {
        GRAPHR_ASSERT(e.src >= row0 && e.src - row0 < crossbarDim_,
                      "edge row ", e.src, " outside tile at ", row0);
        GRAPHR_ASSERT(e.dst >= col0 && e.dst - col0 < tileWidth(),
                      "edge col ", e.dst, " outside tile at ", col0);
        const auto row = static_cast<std::uint32_t>(e.src - row0);
        const std::uint64_t col = e.dst - col0;
        const std::uint64_t key =
            static_cast<std::uint64_t>(row) * tileWidth() + col;
        auto [it, inserted] = cells.try_emplace(key, e.weight);
        if (!inserted) {
            it->second = combine == CombineMode::kSum
                             ? it->second + e.weight
                             : std::min(it->second, e.weight);
        }
        ++activity.cellWrites;
    }

    for (const auto &[key, weight] : cells) {
        const auto row =
            static_cast<std::uint32_t>(key / tileWidth());
        const std::uint64_t col = key % tileWidth();
        const auto cb_index = static_cast<std::size_t>(col / crossbarDim_);
        const auto cb_col = static_cast<std::uint32_t>(col % crossbarDim_);
        crossbars_[cb_index].programValue(
            row, cb_col, FixedPoint::quantize(weight, weight_frac_bits));
        present_[key] = true;
        ++crossbarNnz_[cb_index];
        rows_touched[cb_index] |= (std::uint64_t{1} << row);
    }

    for (std::size_t cb = 0; cb < crossbars_.size(); ++cb) {
        if (rows_touched[cb] == 0)
            continue;
        ++activity.crossbarsUsed;
        const auto rows = static_cast<std::uint32_t>(
            std::popcount(rows_touched[cb]));
        activity.maxRowsProgrammed =
            std::max(activity.maxRowsProgrammed, rows);
        // One array write op programs a whole occupied wordline (all
        // bitlines, hence all slices of the row's values) at once.
        activity.rowWriteOps += rows;
    }

    ledger_.events().arrayWrites += activity.rowWriteOps;
    return activity;
}

std::vector<double>
GraphEngineArray::runMac(const std::vector<double> &input,
                         int input_frac_bits, int weight_frac_bits)
{
    std::vector<double> out;
    runMacInto(input, input_frac_bits, weight_frac_bits, out);
    return out;
}

void
GraphEngineArray::runMacInto(const std::vector<double> &input,
                             int input_frac_bits, int weight_frac_bits,
                             std::vector<double> &out)
{
    GRAPHR_ASSERT(input.size() == crossbarDim_, "input length ",
                  input.size(), " != C ", crossbarDim_);

    rawInScratch_.resize(crossbarDim_);
    std::vector<FixedPoint::Raw> &raw_in = rawInScratch_;
    for (std::uint32_t r = 0; r < crossbarDim_; ++r)
        raw_in[r] = FixedPoint::quantize(input[r], input_frac_bits).raw();

    const double scale =
        static_cast<double>(1u << input_frac_bits) *
        static_cast<double>(1u << weight_frac_bits);

    out.assign(tileWidth(), 0.0);
    std::uint64_t reads = 0;
    std::uint64_t samples = 0;
    for (std::size_t cb = 0; cb < crossbars_.size(); ++cb) {
        // Empty crossbars contribute all-zero columns and leave the
        // variation RNG untouched (level-0 cells read exactly), so
        // only the event charge below applies.
        if (crossbarNnz_[cb] != 0) {
            const std::vector<std::uint64_t> cols =
                crossbars_[cb].mvmRaw(raw_in);
            for (std::uint32_t c = 0; c < crossbarDim_; ++c) {
                out[cb * crossbarDim_ + c] =
                    static_cast<double>(cols[c]) / scale;
            }
        }
        // One array read per input slice; one ADC sample per physical
        // bitline (C values x weight slices) per input slice.
        reads += params_.inputSlices;
        samples += static_cast<std::uint64_t>(params_.inputSlices) *
                   crossbarDim_ * params_.slicesPerValue();
    }

    ledger_.events().arrayReads += reads;
    ledger_.events().adcSamples += samples;
    ledger_.events().sampleHolds += samples;
    ledger_.events().shiftAdds += tileWidth();
}

std::vector<double>
GraphEngineArray::runAddOp(std::uint32_t row, double dist_u,
                           int weight_frac_bits)
{
    std::vector<double> out;
    runAddOpInto(row, dist_u, weight_frac_bits, out);
    return out;
}

void
GraphEngineArray::runAddOpInto(std::uint32_t row, double dist_u,
                               int weight_frac_bits,
                               std::vector<double> &out)
{
    GRAPHR_ASSERT(row < crossbarDim_, "row ", row, " outside tile");

    out.assign(tileWidth(), kInfDistance);
    const double w_scale = static_cast<double>(1u << weight_frac_bits);

    std::uint64_t reads = 0;
    std::uint64_t samples = 0;
    for (std::size_t cb = 0; cb < crossbars_.size(); ++cb) {
        // Empty crossbars hold no edges in any row: skip the compute,
        // keep the event charge.
        if (crossbarNnz_[cb] != 0) {
            const std::vector<FixedPoint::Raw> row_vals =
                crossbars_[cb].selectRow(row);
            for (std::uint32_t c = 0; c < crossbarDim_; ++c) {
                const std::uint64_t col = cb * crossbarDim_ + c;
                if (!presentAt(row, col))
                    continue;
                // The fixed "1" row adds dist(u) to each weight in
                // analog (paper Fig. 16(c)); functionally that is
                // w + dist_u.
                out[col] =
                    static_cast<double>(row_vals[c]) / w_scale + dist_u;
            }
        }
        reads += 1;
        samples += static_cast<std::uint64_t>(crossbarDim_) *
                   params_.slicesPerValue();
    }

    ledger_.events().arrayReads += reads;
    ledger_.events().adcSamples += samples;
    ledger_.events().sampleHolds += samples;
    ledger_.events().shiftAdds += tileWidth();
}

TileSnapshot
GraphEngineArray::saveTile(int weight_frac_bits) const
{
    TileSnapshot snapshot;
    snapshot.fracBits = weight_frac_bits;
    // Scan only occupied crossbars: O(used crossbars * C^2), not the
    // dense C x tileWidth presence grid.
    for (std::size_t cb = 0; cb < crossbars_.size(); ++cb) {
        if (crossbarNnz_[cb] == 0)
            continue;
        const std::uint64_t col0 = cb * crossbarDim_;
        for (std::uint32_t row = 0; row < crossbarDim_; ++row) {
            for (std::uint32_t c = 0; c < crossbarDim_; ++c) {
                const std::uint64_t col = col0 + c;
                if (!presentAt(row, col))
                    continue;
                snapshot.cells.push_back(TileSnapshot::CellValue{
                    row, col, crossbars_[cb].storedRaw(row, c)});
            }
        }
    }
    return snapshot;
}

void
GraphEngineArray::loadTile(const TileSnapshot &snapshot)
{
    clearProgrammedState();
    for (const TileSnapshot::CellValue &cell : snapshot.cells) {
        const auto cb = static_cast<std::size_t>(cell.col / crossbarDim_);
        const auto cb_col =
            static_cast<std::uint32_t>(cell.col % crossbarDim_);
        crossbars_[cb].programValue(
            cell.row, cb_col,
            FixedPoint::fromRaw(cell.raw, snapshot.fracBits));
        present_[static_cast<std::size_t>(cell.row) * tileWidth() +
                 cell.col] = true;
        ++crossbarNnz_[cb];
    }
}

std::vector<bool>
GraphEngineArray::rowMask(std::uint32_t row) const
{
    GRAPHR_ASSERT(row < crossbarDim_, "row outside tile");
    std::vector<bool> mask(tileWidth(), false);
    for (std::uint64_t col = 0; col < tileWidth(); ++col)
        mask[col] = presentAt(row, col);
    return mask;
}

void
GraphEngineArray::setVariation(double sigma_levels, std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (Crossbar &cb : crossbars_)
        cb.setVariation(sigma_levels, s++);
}

} // namespace graphr
