#include "simd.hh"

#include <atomic>
#include <cstdlib>

#include "common/logging.hh"

namespace graphr::simd
{

namespace
{

constexpr Kernels kScalarKernels{&detail::scalarMvmRowAxpy,
                                 Level::kScalar, "scalar"};
#if GRAPHR_SIMD_X86
constexpr Kernels kSseKernels{&detail::sseMvmRowAxpy, Level::kSse,
                              "sse"};
constexpr Kernels kAvx2Kernels{&detail::avx2MvmRowAxpy, Level::kAvx2,
                               "avx2"};
#endif

/**
 * The resolved dispatch singleton. Null until the first
 * activeKernels() call; concurrent first calls resolve independently
 * (getenv + cpuid are stable) and CAS-publish the same table, so the
 * race is benign and TSan-clean.
 */
std::atomic<const Kernels *> g_active{nullptr};

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
    case Level::kScalar:
        return "scalar";
    case Level::kSse:
        return "sse";
    case Level::kAvx2:
        return "avx2";
    }
    return "?";
}

std::optional<Level>
parseLevelName(std::string_view name)
{
    if (name == "scalar")
        return Level::kScalar;
    if (name == "sse" || name == "sse2" || name == "sse4.1")
        return Level::kSse;
    if (name == "avx2")
        return Level::kAvx2;
    return std::nullopt;
}

bool
levelSupported(Level level)
{
    if (level == Level::kScalar)
        return true;
#if GRAPHR_SIMD_X86
    if (level == Level::kSse)
        return __builtin_cpu_supports("sse4.1") != 0;
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

Level
bestSupportedLevel()
{
    if (levelSupported(Level::kAvx2))
        return Level::kAvx2;
    if (levelSupported(Level::kSse))
        return Level::kSse;
    return Level::kScalar;
}

const Kernels &
kernelsFor(Level level)
{
#if GRAPHR_SIMD_X86
    if (level == Level::kAvx2)
        return kAvx2Kernels;
    if (level == Level::kSse)
        return kSseKernels;
#else
    (void)level;
#endif
    return kScalarKernels;
}

Level
detail::resolveLevel(const char *env_value, Level best)
{
    if (env_value == nullptr || *env_value == '\0')
        return best;
    const std::string_view value(env_value);
    if (value == "auto")
        return best;
    const std::optional<Level> requested = parseLevelName(value);
    if (!requested.has_value()) {
        GRAPHR_WARN("GRAPHR_SIMD='", std::string(value),
                    "' is not scalar|sse|avx2|auto; using ",
                    levelName(best));
        return best;
    }
    if (*requested > best) {
        GRAPHR_WARN("GRAPHR_SIMD=", levelName(*requested),
                    " not supported by this CPU; falling back to ",
                    levelName(best));
        return best;
    }
    return *requested;
}

const Kernels &
activeKernels()
{
    const Kernels *active = g_active.load(std::memory_order_acquire);
    if (active == nullptr) {
        const Level level = detail::resolveLevel(
            std::getenv("GRAPHR_SIMD"), bestSupportedLevel());
        const Kernels *resolved = &kernelsFor(level);
        const Kernels *expected = nullptr;
        g_active.compare_exchange_strong(expected, resolved,
                                         std::memory_order_acq_rel);
        active = g_active.load(std::memory_order_acquire);
    }
    return *active;
}

Level
activeLevel()
{
    return activeKernels().level;
}

void
setActiveLevelForTest(Level level)
{
    GRAPHR_ASSERT(levelSupported(level), "cannot force unsupported ",
                  levelName(level), " kernels");
    g_active.store(&kernelsFor(level), std::memory_order_release);
}

} // namespace graphr::simd
