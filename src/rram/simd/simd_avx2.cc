/**
 * @file
 * AVX2 tier of the crossbar MVM AXPY kernel. Compiled with -mavx2 on
 * x86 only; see simd_sse.cc for the isolation rationale.
 *
 * One step covers 8 columns: VPMOVZXWQ widens u16 column values to
 * u64 lanes, VPMULUDQ multiplies by the broadcast input (both
 * operands < 2^16, so the 32x32->64 multiply is exact) and VPADDQ
 * accumulates. Unaligned loads/stores only.
 */

#include "simd.hh"

#if GRAPHR_SIMD_X86

#include <immintrin.h>

namespace graphr::simd::detail
{

void
avx2MvmRowAxpy(const std::uint16_t *row, std::size_t n,
               std::uint64_t in, std::uint64_t *acc)
{
    const __m256i vin =
        _mm256_set1_epi64x(static_cast<long long>(in));
    std::size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        const __m128i v16 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(row + c));
        const __m256i w03 = _mm256_cvtepu16_epi64(v16);
        const __m256i w47 =
            _mm256_cvtepu16_epi64(_mm_srli_si128(v16, 8));
        __m256i a03 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + c));
        __m256i a47 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + c + 4));
        a03 = _mm256_add_epi64(a03, _mm256_mul_epu32(w03, vin));
        a47 = _mm256_add_epi64(a47, _mm256_mul_epu32(w47, vin));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + c),
                            a03);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + c + 4),
                            a47);
    }
    for (; c < n; ++c)
        acc[c] += in * row[c];
}

} // namespace graphr::simd::detail

#endif // GRAPHR_SIMD_X86
