/**
 * @file
 * Portable scalar fallback for the crossbar MVM AXPY kernel. Always
 * compiled; the reference every SIMD tier must match bit-for-bit.
 */

#include "simd.hh"

namespace graphr::simd::detail
{

void
scalarMvmRowAxpy(const std::uint16_t *row, std::size_t n,
                 std::uint64_t in, std::uint64_t *acc)
{
    for (std::size_t c = 0; c < n; ++c)
        acc[c] += in * row[c];
}

} // namespace graphr::simd::detail
