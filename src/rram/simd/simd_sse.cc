/**
 * @file
 * SSE4.1 tier of the crossbar MVM AXPY kernel. This translation unit
 * is compiled with -msse4.1 (CMake sets the flag on x86 only); the
 * rest of the build never sees SSE4.1 code, so the binary still runs
 * on older CPUs as long as dispatch keeps this tier unselected.
 *
 * Layout of one step (4 columns): widen four u16 column values to
 * u64 lanes with PMOVZX, multiply by the broadcast input with PMULUDQ
 * (the low-32 x low-32 -> 64 multiply; both operands fit in 16 bits,
 * so the product is exact), and add into the u64 accumulators.
 * Unaligned loads/stores throughout — callers pass arbitrary row
 * offsets into the SoA plane.
 */

#include "simd.hh"

#if GRAPHR_SIMD_X86

#include <immintrin.h>

namespace graphr::simd::detail
{

void
sseMvmRowAxpy(const std::uint16_t *row, std::size_t n,
              std::uint64_t in, std::uint64_t *acc)
{
    const __m128i vin =
        _mm_set1_epi64x(static_cast<long long>(in));
    std::size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        // 4 u16 column values -> two vectors of 2 u64 lanes each.
        const __m128i v16 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(row + c));
        const __m128i w01 = _mm_cvtepu16_epi64(v16);
        const __m128i w23 =
            _mm_cvtepu16_epi64(_mm_srli_si128(v16, 4));
        __m128i a01 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(acc + c));
        __m128i a23 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(acc + c + 2));
        a01 = _mm_add_epi64(a01, _mm_mul_epu32(w01, vin));
        a23 = _mm_add_epi64(a23, _mm_mul_epu32(w23, vin));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + c), a01);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + c + 2),
                         a23);
    }
    for (; c < n; ++c)
        acc[c] += in * row[c];
}

} // namespace graphr::simd::detail

#endif // GRAPHR_SIMD_X86
