/**
 * @file
 * Runtime-dispatched SIMD kernels for the crossbar MVM datapath.
 *
 * The functional crossbar stores cell state as structure-of-arrays
 * planes (see rram/crossbar.hh), so the exact (variation-off) MVM
 * reduces to a row-major AXPY over unit-stride uint16 spans:
 *
 *     acc[col] += input * row[col]        (64-bit accumulation)
 *
 * This header exposes that kernel behind a small dispatch table with
 * three implementations — AVX2, SSE2/SSE4.1 and a portable scalar
 * loop — selected once per process by cpuid-style feature detection
 * and overridable with the GRAPHR_SIMD environment variable
 * (scalar|sse|avx2|auto) for tests and CI.
 *
 * Bit-exactness contract: every kernel computes the identical
 * mod-2^64 sums in a different order; since the accumulation is pure
 * integer arithmetic, all levels produce byte-identical results for
 * any input. The per-ISA translation units are compiled with the
 * matching -m flags; nothing in this header requires them, so the
 * rest of the build stays at the baseline ISA.
 */

#ifndef GRAPHR_RRAM_SIMD_SIMD_HH
#define GRAPHR_RRAM_SIMD_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#if (defined(__x86_64__) || defined(__i386__)) &&                      \
    (defined(__GNUC__) || defined(__clang__))
#define GRAPHR_SIMD_X86 1
#else
#define GRAPHR_SIMD_X86 0
#endif

namespace graphr::simd
{

/** Instruction-set tiers, ordered weakest to strongest. */
enum class Level
{
    kScalar = 0,
    kSse = 1,
    kAvx2 = 2,
};

/**
 * One kernel set. All function pointers are non-null and ISA-safe to
 * call only when levelSupported(level) is true (the scalar table is
 * always safe).
 */
struct Kernels
{
    /**
     * acc[c] += in * row[c] for c in [0, n). @p in must fit in 16
     * bits (a raw fixed-point input); products and sums are exact in
     * 64-bit. Unaligned @p row / @p acc are fine (unaligned loads
     * only — no UB on any alignment).
     */
    void (*mvmRowAxpy)(const std::uint16_t *row, std::size_t n,
                       std::uint64_t in, std::uint64_t *acc);
    Level level;
    const char *name;
};

/** Lower-case display name ("scalar", "sse", "avx2"). */
const char *levelName(Level level);

/** Parse a GRAPHR_SIMD value; "auto"/"" and unknown map to nullopt. */
std::optional<Level> parseLevelName(std::string_view name);

/** Can the running CPU execute this tier? (kScalar: always.) */
bool levelSupported(Level level);

/** Strongest tier the running CPU supports. */
Level bestSupportedLevel();

/**
 * The kernel table for one tier. For a tier this build has no
 * implementation of (non-x86 builds), returns the scalar table.
 * Calling an unsupported tier's kernels on the wrong CPU is illegal;
 * guard with levelSupported().
 */
const Kernels &kernelsFor(Level level);

/**
 * The process-wide active kernel set: bestSupportedLevel() clamped by
 * the GRAPHR_SIMD override, resolved once on first use (thread-safe;
 * the resolved pointer is published through an atomic, so concurrent
 * first calls race benignly to the same value). An override naming an
 * unsupported or unknown tier warns once and falls back.
 */
const Kernels &activeKernels();

/** Tier of activeKernels() (resolves the dispatch if needed). */
Level activeLevel();

/**
 * Force the active kernel set (tests only — e.g. asserting that a
 * full functional run is byte-identical across tiers within one
 * process). Not safe concurrently with in-flight MVMs; the level must
 * satisfy levelSupported().
 */
void setActiveLevelForTest(Level level);

namespace detail
{

/**
 * Pure resolution policy, separated for unit testing: the tier a
 * GRAPHR_SIMD value (possibly absent) selects on a CPU whose best
 * tier is @p best. Unknown names and tiers above @p best fall back
 * (to @p best); explicit lower tiers are honoured.
 */
Level resolveLevel(const char *env_value, Level best);

void scalarMvmRowAxpy(const std::uint16_t *row, std::size_t n,
                      std::uint64_t in, std::uint64_t *acc);
#if GRAPHR_SIMD_X86
void sseMvmRowAxpy(const std::uint16_t *row, std::size_t n,
                   std::uint64_t in, std::uint64_t *acc);
void avx2MvmRowAxpy(const std::uint16_t *row, std::size_t n,
                    std::uint64_t in, std::uint64_t *acc);
#endif

} // namespace detail

} // namespace graphr::simd

#endif // GRAPHR_RRAM_SIMD_SIMD_HH
