/**
 * @file
 * Functional graph engine: a bank of crossbars spanning one tile.
 *
 * A tile (paper "subgraph") is C rows x (C*N*G) columns; the full GE
 * array of one GraphR node covers it with N*G crossbars of C columns
 * each. This class implements the *functional* behaviour — program a
 * tile, run parallel-MAC or parallel-add-op over it — and counts the
 * device events (writes, reads, ADC samples, S/A, sALU, register
 * accesses) into an EnergyLedger. Timing is derived by the node-level
 * cost model from the same counts.
 */

#ifndef GRAPHR_RRAM_GRAPH_ENGINE_HH
#define GRAPHR_RRAM_GRAPH_ENGINE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/fixed_point.hh"
#include "graph/edge.hh"
#include "rram/crossbar.hh"
#include "rram/energy.hh"
#include "rram/salu.hh"

namespace graphr
{

/**
 * How parallel (duplicate) edges are merged into one matrix cell. A
 * crossbar cell can hold only one value, so multigraph edges must be
 * combined consistently with the algorithm's reduce function: kSum
 * for additive reduces (parallel MAC), kMin for min reduces
 * (parallel add-op).
 */
enum class CombineMode
{
    kSum,
    kMin,
};

/** Per-tile device activity summary (feeds the cost model). */
struct TileActivity
{
    std::uint32_t crossbarsUsed = 0;   ///< crossbars with >= 1 nonzero
    std::uint32_t maxRowsProgrammed = 0; ///< serial row-write depth
    std::uint64_t cellWrites = 0;      ///< logical values programmed
    std::uint64_t rowWriteOps = 0;     ///< array-level row writes
    std::uint64_t readPasses = 0;      ///< array read operations
    std::uint64_t adcSamples = 0;
    std::uint64_t saluOps = 0;
};

/**
 * Saved programmed state of one tile: the quantised nonzero cells.
 * Under ProgramCharging::kOnce every tile's weights stay resident in
 * its own crossbar bank after the initial programming; the functional
 * model serialises tiles through one GraphEngineArray, so "resident"
 * is modelled by snapshotting a tile after its first (and only)
 * programTile() and replaying the snapshot on later visits.
 * loadTile() charges no write events — switching the evaluation
 * target between already-programmed banks is not a reprogram.
 *
 * The snapshot stores logical (row, col, raw) triples, independent of
 * the crossbar's internal layout: loadTile() re-packs them through
 * programValue(), which rebuilds the SoA slice planes, the packed raw
 * plane and the row-occupancy mask consistently. Snapshots taken
 * before the SoA refactor therefore replay identically.
 */
struct TileSnapshot
{
    struct CellValue
    {
        std::uint32_t row = 0;
        std::uint64_t col = 0; ///< tile-relative column
        FixedPoint::Raw raw = 0;
    };
    std::vector<CellValue> cells;
    int fracBits = 0;
};

/**
 * Functional model of the full GE array of a GraphR node operating on
 * one tile at a time.
 */
class GraphEngineArray
{
  public:
    /**
     * @param crossbar_dim C
     * @param num_crossbars N*G (crossbars across all GEs)
     * @param params device parameters
     * @param ledger energy event sink (must outlive this object)
     */
    GraphEngineArray(std::uint32_t crossbar_dim,
                     std::uint32_t num_crossbars,
                     const DeviceParams &params, EnergyLedger &ledger);

    std::uint32_t crossbarDim() const { return crossbarDim_; }
    std::uint32_t numCrossbars() const
    {
        return static_cast<std::uint32_t>(crossbars_.size());
    }
    /** Tile width in values = C * numCrossbars. */
    std::uint64_t tileWidth() const
    {
        return static_cast<std::uint64_t>(crossbarDim_) * numCrossbars();
    }

    /**
     * Program a tile's edges. Edge coordinates are absolute; the
     * tile origin (row0, col0) maps them into [0, C) x [0,
     * tileWidth). Weights are quantised with weight_frac_bits
     * fractional bits; parallel edges are merged per @p combine.
     * Returns the activity (also accumulated into the ledger).
     */
    TileActivity programTile(std::span<const Edge> edges,
                             std::uint64_t row0, std::uint64_t col0,
                             int weight_frac_bits,
                             CombineMode combine = CombineMode::kSum);

    /**
     * Parallel MAC over the programmed tile: y[col] += x[row] *
     * W[row][col] for all columns at once (paper section 4.1).
     *
     * @param input per-row real inputs (length C), quantised with
     *        input_frac_bits
     * @param input_frac_bits input quantisation
     * @param weight_frac_bits must match programTile's
     * @return tileWidth() real-valued column sums
     */
    std::vector<double> runMac(const std::vector<double> &input,
                               int input_frac_bits, int weight_frac_bits);

    /**
     * runMac() into a caller-owned buffer (resized to tileWidth()):
     * the tile walks call this once per tile, so reusing one buffer
     * avoids a tileWidth-sized allocation per tile. Identical
     * results and event accounting to runMac().
     */
    void runMacInto(const std::vector<double> &input,
                    int input_frac_bits, int weight_frac_bits,
                    std::vector<double> &out);

    /**
     * Parallel add-op for one active source row (paper section 4.2,
     * Fig. 16(c)): returns dist_u + W[row][col] for every column that
     * holds an edge, and +infinity for absent columns.
     *
     * @param row tile-relative source row
     * @param dist_u current distance label of the source
     * @param weight_frac_bits quantisation used when programming
     */
    std::vector<double> runAddOp(std::uint32_t row, double dist_u,
                                 int weight_frac_bits);

    /** runAddOp() into a caller-owned buffer; see runMacInto(). */
    void runAddOpInto(std::uint32_t row, double dist_u,
                      int weight_frac_bits, std::vector<double> &out);

    /** Mask of columns holding a nonzero in the given row. */
    std::vector<bool> rowMask(std::uint32_t row) const;

    /**
     * Capture the currently programmed tile (exact stored raw values;
     * @p weight_frac_bits must match the programTile() call).
     */
    TileSnapshot saveTile(int weight_frac_bits) const;

    /**
     * Make a previously saved tile the evaluation target again.
     * Restores cells and presence exactly; charges no write events
     * (see TileSnapshot).
     */
    void loadTile(const TileSnapshot &snapshot);

    /** sALU shared by the node (configured per algorithm). */
    Salu &salu() { return salu_; }

    /** Enable cell programming variation on all crossbars. */
    void setVariation(double sigma_levels, std::uint64_t seed);

  private:
    std::uint32_t crossbarDim_;
    DeviceParams params_;
    EnergyLedger &ledger_;
    std::vector<Crossbar> crossbars_;
    /** Presence mask: does (row, col) hold an edge? Tile-relative. */
    std::vector<bool> present_;
    /**
     * Nonzero cells per crossbar. Empty crossbars produce all-zero
     * MVM columns and never touch the variation RNG (level-0 cells
     * read exactly), so compute skips them — a large win on sparse
     * tiles — while event accounting still covers the full array.
     */
    std::vector<std::uint32_t> crossbarNnz_;
    /** Scratch input-quantisation buffer reused by runMacInto(). */
    std::vector<FixedPoint::Raw> rawInScratch_;
    Salu salu_{SaluOp::kAdd};

    bool presentAt(std::uint32_t row, std::uint64_t col) const;

    /** Zero every occupied crossbar and the presence state. */
    void clearProgrammedState();
};

} // namespace graphr

#endif // GRAPHR_RRAM_GRAPH_ENGINE_HH
