#include "area.hh"

#include <iomanip>

namespace graphr
{

double
AreaBreakdown::total() const
{
    return crossbars + adcs + sampleHolds + drivers + shiftAdds + salus +
           registers + controller;
}

void
AreaBreakdown::print(std::ostream &os) const
{
    const auto line = [&os](const char *name, double mm2, double total) {
        os << "  " << std::left << std::setw(14) << name << std::fixed
           << std::setprecision(4) << mm2 << " mm^2  ("
           << std::setprecision(1) << (total > 0 ? mm2 / total * 100 : 0)
           << "%)\n";
    };
    const double t = total();
    os << "node area breakdown:\n";
    line("crossbars", crossbars, t);
    line("ADCs", adcs, t);
    line("sample&hold", sampleHolds, t);
    line("drivers", drivers, t);
    line("shift&add", shiftAdds, t);
    line("sALUs", salus, t);
    line("registers", registers, t);
    line("controller", controller, t);
    os << "  total         " << std::setprecision(4) << t << " mm^2\n";
}

AreaBreakdown
nodeArea(const TilingParams &tiling, const DeviceParams &device,
         const AreaParams &params)
{
    AreaBreakdown area;
    constexpr double um2_to_mm2 = 1e-6;

    const double total_crossbars =
        static_cast<double>(tiling.crossbarsPerGe) * tiling.numGe;
    // Physical array: C wordlines x (C * slices) bitlines of 4F^2
    // cells, plus a one-third periphery overhead (decoders, muxes).
    const double f_um = params.featureNm * 1e-3;
    const double cell_um2 = 4.0 * f_um * f_um;
    const double cells_per_cb = static_cast<double>(tiling.crossbarDim) *
                                tiling.crossbarDim *
                                device.slicesPerValue();
    area.crossbars = total_crossbars * cells_per_cb * cell_um2 * 4.0 /
                     3.0 * um2_to_mm2;

    area.adcs = static_cast<double>(device.adcsPerGe) * tiling.numGe *
                params.adcUm2 * um2_to_mm2;

    const double bitlines_per_cb =
        static_cast<double>(tiling.crossbarDim) *
        device.slicesPerValue();
    area.sampleHolds = total_crossbars * bitlines_per_cb *
                       params.sampleHoldUm2 * um2_to_mm2;
    area.drivers = total_crossbars * tiling.crossbarDim *
                   params.driverUm2 * um2_to_mm2;
    area.shiftAdds = total_crossbars * params.shiftAddUm2 * um2_to_mm2;

    // One sALU lane per crossbar column group.
    area.salus = total_crossbars * params.saluLaneUm2 * um2_to_mm2;

    // RegI: C entries per GE; RegO: tile-width entries (column-major
    // choice, section 3.3), both 16-bit.
    const double tile_width = static_cast<double>(tiling.crossbarDim) *
                              tiling.crossbarsPerGe * tiling.numGe;
    const double reg_bits = (static_cast<double>(tiling.crossbarDim) *
                                 tiling.numGe +
                             tile_width) *
                            device.valueBits;
    area.registers =
        reg_bits / 8.0 / 1024.0 * params.regUm2PerKb * um2_to_mm2;

    area.controller = static_cast<double>(tiling.numGe) *
                      params.controllerUm2PerGe * um2_to_mm2;
    return area;
}

} // namespace graphr
