/**
 * @file
 * Functional ReRAM crossbar performing in-situ matrix-vector
 * multiplication (paper Fig. 3(c)).
 *
 * Geometry: the crossbar holds a C x C block of 16-bit fixed-point
 * values. Each value is bit-sliced into kSlicesPerValue 4-bit cells
 * on adjacent bitlines of the same wordline, so the physical array is
 * C wordlines x (C * kSlicesPerValue) bitlines; the shift-and-add
 * unit recombines per-slice bitline sums into full-precision column
 * results. Inputs are likewise applied slice-serially by the driver.
 *
 * Cell state is stored structure-of-arrays: one contiguous C x C
 * plane of cell levels per slice (levelAt), plus a packed plane of
 * the recombined 16-bit raw values (rawAt) kept consistent by
 * programValue()/clear(). A wordline's contribution to the MVM is
 * therefore a unit-stride uint16 span, which the exact fast path
 * feeds to the runtime-dispatched SIMD kernels (rram/simd/simd.hh).
 *
 * The arithmetic is integer-exact: summing slice partial products
 * with the correct shifts reproduces the full 16x16-bit multiply, so
 * the functional result equals a digital fixed-point SpMV — and,
 * because that recombination distributes over rows, the exact MVM
 * equals a plain uint16 dot product per column, which is what the
 * SIMD kernels compute (bit-identical at every tier). Optional
 * programming variation injects the analog error the paper argues
 * graph algorithms tolerate; with variation enabled the slice-serial
 * scalar walk runs instead, preserving the RNG draw order exactly.
 */

#ifndef GRAPHR_RRAM_CROSSBAR_HH
#define GRAPHR_RRAM_CROSSBAR_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/fixed_point.hh"
#include "common/logging.hh"
#include "rram/cell.hh"
#include "rram/device_params.hh"
#include "rram/simd/simd.hh"

namespace graphr
{

/** Functional model of one C x C (logical) ReRAM crossbar. */
class Crossbar
{
  public:
    /**
     * @param dim logical dimension C (values per side)
     * @param params device parameters (cell levels, resistances)
     */
    Crossbar(std::uint32_t dim, const DeviceParams &params);

    std::uint32_t dim() const { return dim_; }

    /** Clear all cells to zero. */
    void clear();

    /**
     * Program one logical value at (row, col). Counts as one row
     * visit for write accounting at the caller's level.
     */
    void programValue(std::uint32_t row, std::uint32_t col,
                      FixedPoint value);

    /** Read back the exact stored raw value. */
    FixedPoint::Raw
    storedRaw(std::uint32_t row, std::uint32_t col) const
    {
        GRAPHR_ASSERT(row < dim_ && col < dim_,
                      "read outside crossbar");
        return rawPlane_[static_cast<std::size_t>(row) * dim_ + col];
    }

    /**
     * In-situ MVM: y[col] = sum_row input[row] * W[row][col], done
     * slice-by-slice exactly as the hardware would (input slices via
     * driver, weight slices via bitlines, shift-and-add recombine).
     * Inputs and outputs are raw fixed-point integers; the caller
     * owns scaling.
     *
     * Only occupied wordlines are read (row bitmask): skipped rows
     * are guaranteed all-zero, so the result, the variation RNG
     * stream and the modelled event counts (charged by the caller)
     * are identical to a dense scan. A fully empty crossbar skips
     * the S/A recombination entirely. With variation off the
     * accumulation runs through the dispatched SIMD kernels over the
     * packed raw plane — bit-identical to the slice-serial walk.
     *
     * @param input_raw one raw 16-bit input per wordline
     * @return 64-bit integer column sums (full precision)
     */
    std::vector<std::uint64_t>
    mvmRaw(const std::vector<FixedPoint::Raw> &input_raw) const;

    /**
     * Row-selected read for the parallel add-op pattern: returns the
     * raw stored values of one wordline (an SpMV with a one-hot input
     * vector, as in paper Fig. 16(c)).
     */
    std::vector<FixedPoint::Raw> selectRow(std::uint32_t row) const;

    /**
     * Enable programming variation: each cell read is perturbed with
     * Gaussian noise of sigma (in level units). Models analog error.
     */
    void
    setVariation(double sigma_levels, std::uint64_t seed)
    {
        variationSigma_ = sigma_levels;
        rng_ = Rng(seed);
    }

    /**
     * Override the MVM kernel set for this instance (tests and
     * micro-benches comparing tiers side by side; the level must be
     * supported by the CPU). New instances use the process-wide
     * dispatch (simd::activeKernels(), GRAPHR_SIMD override).
     */
    void
    setSimdKernels(const simd::Kernels &kernels)
    {
        kernels_ = &kernels;
    }

    /** Kernel set this instance accumulates with. */
    const simd::Kernels &simdKernels() const { return *kernels_; }

    /** Number of wordlines that currently hold at least one nonzero. */
    std::uint32_t occupiedRows() const;

    /**
     * Whether the wordline may hold a nonzero cell. Maintained as a
     * row bitmask by programValue()/clear(); a clear bit guarantees
     * the row is all level-0 cells (which read exactly and never
     * consume variation RNG draws), so compute may skip it without
     * changing results or the RNG stream.
     */
    bool
    rowMayHoldNonzero(std::uint32_t row) const
    {
        GRAPHR_ASSERT(row < dim_, "row ", row, " outside crossbar");
        return (rowMask_[row >> 6] >> (row & 63)) & 1u;
    }

    /**
     * Ascending indices of the possibly-nonzero wordlines (the set
     * rowMayHoldNonzero() answers over). Ascending order keeps the
     * variation RNG read order identical to a dense scan.
     */
    std::vector<std::uint32_t> occupiedRowIndices() const;

  private:
    /** Level of the cell holding slice s of value (row, col), from
     *  the per-slice SoA plane. */
    std::uint8_t
    levelAt(std::uint32_t row, std::uint32_t col, int slice) const
    {
        return levelPlanes_[planeOffset(slice) +
                            static_cast<std::size_t>(row) * dim_ +
                            col];
    }

    /** First cell of slice @p slice's C x C plane. */
    std::size_t
    planeOffset(int slice) const
    {
        return static_cast<std::size_t>(slice) * dim_ * dim_;
    }

    std::uint8_t
    readLevel(std::uint8_t level) const
    {
        return Cell::perturbLevel(level, variationSigma_, rng_,
                                  cellLevels_);
    }

    /**
     * Invoke @p fn(row) for every possibly-nonzero wordline in
     * ascending order. Allocation-free — mvmRaw sits on the hot path
     * and runs this once per (input slice, column, weight slice).
     */
    template <typename Fn>
    void
    forEachOccupiedRow(Fn &&fn) const
    {
        for (std::size_t word = 0; word < rowMask_.size(); ++word) {
            std::uint64_t bits = rowMask_[word];
            while (bits != 0) {
                fn(static_cast<std::uint32_t>(
                    word * 64 +
                    static_cast<unsigned>(std::countr_zero(bits))));
                bits &= bits - 1;
            }
        }
    }

    bool
    anyRowOccupied() const
    {
        for (const std::uint64_t word : rowMask_) {
            if (word != 0)
                return true;
        }
        return false;
    }

    /** Occupied wordlines, straight off the bitmask. */
    std::uint32_t
    maskedRowCount() const
    {
        std::uint32_t count = 0;
        for (const std::uint64_t word : rowMask_)
            count += static_cast<std::uint32_t>(std::popcount(word));
        return count;
    }

    std::uint32_t dim_;
    int slices_;
    int cellLevels_;
    /**
     * SoA cell state: kSlicesPerValue contiguous C x C planes of
     * 4-bit levels (slice-major, then row-major — a wordline's slice
     * levels are a unit-stride span).
     */
    std::vector<std::uint8_t> levelPlanes_;
    /**
     * Packed plane of the recombined 16-bit values, row-major. Always
     * consistent with levelPlanes_ (both are written only by
     * programValue()/clear()); the exact MVM/selectRow fast paths and
     * storedRaw() read it directly.
     */
    std::vector<FixedPoint::Raw> rawPlane_;
    /**
     * One bit per wordline, set when a nonzero value is programmed
     * into the row and reset by clear(). Conservative: reprogramming
     * a cell to zero leaves the bit set, so a set bit means "may hold
     * nonzeros" while a clear bit guarantees an all-zero row.
     */
    std::vector<std::uint64_t> rowMask_;
    /** Active MVM kernel tier (process dispatch unless overridden). */
    const simd::Kernels *kernels_;
    double variationSigma_ = 0.0;
    mutable Rng rng_{0};
};

} // namespace graphr

#endif // GRAPHR_RRAM_CROSSBAR_HH
