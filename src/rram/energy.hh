/**
 * @file
 * Event-counting energy ledger for the GraphR node.
 *
 * Components report *events* (array writes, reads, ADC samples, sALU
 * ops, register accesses, streamed bytes); the ledger converts them
 * to energy with DeviceParams at read-out time. Keeping raw counts
 * makes the accounting exact, auditable, and re-priceable in
 * ablations without re-running the simulation.
 */

#ifndef GRAPHR_RRAM_ENERGY_HH
#define GRAPHR_RRAM_ENERGY_HH

#include <cstdint>
#include <map>
#include <string>

#include "rram/device_params.hh"

namespace graphr
{

/** Raw event counts from one simulation. */
struct EnergyEvents
{
    std::uint64_t arrayWrites = 0;   ///< crossbar row-write operations
    std::uint64_t arrayReads = 0;    ///< crossbar read (MVM pass) ops
    std::uint64_t adcSamples = 0;    ///< analog-to-digital conversions
    std::uint64_t sampleHolds = 0;   ///< S/H captures
    std::uint64_t shiftAdds = 0;     ///< S/A recombinations
    std::uint64_t saluOps = 0;       ///< scalar reduce operations
    std::uint64_t regAccesses = 0;   ///< RegI/RegO 16-bit accesses
    std::uint64_t memBytes = 0;      ///< bytes streamed from memory ReRAM

    EnergyEvents &operator+=(const EnergyEvents &other);
};

/** Energy breakdown in joules. */
struct EnergyBreakdown
{
    double write = 0.0;
    double read = 0.0;
    double adc = 0.0;
    double sampleHold = 0.0;
    double shiftAdd = 0.0;
    double salu = 0.0;
    double reg = 0.0;
    double memory = 0.0;
    /** Peripheral active power x busy time (set by the node). */
    double peripheral = 0.0;

    double total() const;
};

/** Accumulates events and prices them with a parameter set. */
class EnergyLedger
{
  public:
    explicit EnergyLedger(const DeviceParams &params) : params_(params) {}

    EnergyEvents &events() { return events_; }
    const EnergyEvents &events() const { return events_; }

    /** Price the accumulated events. */
    EnergyBreakdown breakdown() const;

    /** Total energy in joules. */
    double totalJoules() const { return breakdown().total(); }

    void reset() { events_ = EnergyEvents{}; }

    const DeviceParams &params() const { return params_; }

  private:
    DeviceParams params_;
    EnergyEvents events_;
};

} // namespace graphr

#endif // GRAPHR_RRAM_ENERGY_HH
