#include "crossbar.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace graphr
{

Crossbar::Crossbar(std::uint32_t dim, const DeviceParams &params)
    : dim_(dim), slices_(params.slicesPerValue()),
      cellLevels_(params.cellLevels())
{
    GRAPHR_ASSERT(dim_ > 0, "crossbar dimension must be > 0");
    cells_.resize(static_cast<std::size_t>(dim_) * dim_ * slices_);
    rowMask_.assign((dim_ + 63) / 64, 0);
}

void
Crossbar::clear()
{
    // Only occupied wordlines can hold nonzero cells, so zero those
    // row spans instead of reprogramming every cell: O(occupied
    // rows), not O(dim^2 * slices).
    forEachOccupiedRow([this](std::uint32_t row) {
        Cell *first = &cells_[static_cast<std::size_t>(row) * rowSpan()];
        std::fill(first, first + rowSpan(), Cell{});
    });
    std::fill(rowMask_.begin(), rowMask_.end(), 0);
}

void
Crossbar::programValue(std::uint32_t row, std::uint32_t col,
                       FixedPoint value)
{
    GRAPHR_ASSERT(row < dim_ && col < dim_, "program (", row, ",", col,
                  ") outside ", dim_, "x", dim_, " crossbar");
    for (int s = 0; s < slices_; ++s)
        cellAt(row, col, s).program(value.slice(s));
    // Programming zero leaves the cells at level 0; the mask only
    // needs to cover rows that may hold nonzeros.
    if (value.raw() != 0)
        rowMask_[row >> 6] |= std::uint64_t{1} << (row & 63);
}

FixedPoint::Raw
Crossbar::storedRaw(std::uint32_t row, std::uint32_t col) const
{
    GRAPHR_ASSERT(row < dim_ && col < dim_, "read outside crossbar");
    FixedPoint::Raw raw = 0;
    for (int s = slices_ - 1; s >= 0; --s) {
        raw = static_cast<FixedPoint::Raw>(
            (raw << kCellBits) | cellAt(row, col, s).level());
    }
    return raw;
}

std::uint8_t
Crossbar::readLevel(const Cell &cell) const
{
    return cell.readWithVariation(variationSigma_, rng_, cellLevels_);
}

std::vector<std::uint64_t>
Crossbar::mvmRaw(const std::vector<FixedPoint::Raw> &input_raw) const
{
    GRAPHR_ASSERT(input_raw.size() == dim_, "input length ",
                  input_raw.size(), " != crossbar dim ", dim_);
    std::vector<std::uint64_t> columns(dim_, 0);

    // Unoccupied wordlines hold only level-0 cells: they contribute
    // nothing to any bitline and never consume a variation RNG draw,
    // so restricting the row walk to the occupied set (in ascending
    // order, straight off the bitmask — no per-call allocation) is
    // bit-exact and RNG-neutral. An empty crossbar skips the column
    // loops and S/A recombination entirely.
    if (!anyRowOccupied())
        return columns;

    // Outer loop: input slices applied by the driver, LSB first.
    // Inner: weight slices summed on bitlines, recombined by S/A.
    for (int in_s = 0; in_s < slices_; ++in_s) {
        for (std::uint32_t col = 0; col < dim_; ++col) {
            std::array<std::uint64_t, kSlicesPerValue> partials{};
            for (int w_s = 0; w_s < slices_; ++w_s) {
                std::uint64_t bitline = 0;
                forEachOccupiedRow([&](std::uint32_t row) {
                    const std::uint64_t in_nib =
                        (input_raw[row] >> (in_s * kCellBits)) & 0xF;
                    bitline += in_nib *
                               readLevel(cellAt(row, col, w_s));
                });
                partials[static_cast<std::size_t>(w_s)] = bitline;
            }
            // Shift-and-add across weight slices, then shift by the
            // input slice position.
            const std::uint64_t combined = FixedPoint::shiftAdd(partials);
            columns[col] += combined << (in_s * kCellBits);
        }
    }
    return columns;
}

std::vector<FixedPoint::Raw>
Crossbar::selectRow(std::uint32_t row) const
{
    GRAPHR_ASSERT(row < dim_, "row ", row, " outside crossbar");
    std::vector<FixedPoint::Raw> out(dim_, 0);
    // An unoccupied wordline reads all-zero without touching the RNG
    // (level-0 cells are exact), so skip its per-column slice
    // recombination outright.
    if (!rowMayHoldNonzero(row))
        return out;
    for (std::uint32_t col = 0; col < dim_; ++col) {
        FixedPoint::Raw raw = 0;
        for (int s = slices_ - 1; s >= 0; --s) {
            raw = static_cast<FixedPoint::Raw>(
                (raw << kCellBits) | readLevel(cellAt(row, col, s)));
        }
        out[col] = raw;
    }
    return out;
}

std::uint32_t
Crossbar::occupiedRows() const
{
    // The mask is conservative (a nonzero cell may have been
    // reprogrammed to zero), so verify the cells of masked rows —
    // unmasked rows are guaranteed empty and need no scan.
    std::uint32_t count = 0;
    forEachOccupiedRow([this, &count](std::uint32_t row) {
        const Cell *first =
            &cells_[static_cast<std::size_t>(row) * rowSpan()];
        const bool occupied =
            std::any_of(first, first + rowSpan(), [](const Cell &c) {
                return c.level() != 0;
            });
        if (occupied)
            ++count;
    });
    return count;
}

std::vector<std::uint32_t>
Crossbar::occupiedRowIndices() const
{
    std::vector<std::uint32_t> rows;
    forEachOccupiedRow(
        [&rows](std::uint32_t row) { rows.push_back(row); });
    return rows;
}

} // namespace graphr
