#include "crossbar.hh"

#include <algorithm>
#include <array>
#include <bit>

#include "common/logging.hh"
#include "perf/counters.hh"

namespace graphr
{

namespace
{

/** Work metric for the bench gate: occupied wordlines an MVM reads.
 *  Machine- and SIMD-tier-independent (the occupancy mask decides). */
perf::Counter &
mvmRowsCounter()
{
    static perf::Counter &counter = perf::Registry::instance().counter(
        "crossbar.mvm_rows_processed");
    return counter;
}

} // namespace

Crossbar::Crossbar(std::uint32_t dim, const DeviceParams &params)
    : dim_(dim), slices_(params.slicesPerValue()),
      cellLevels_(params.cellLevels()),
      kernels_(&simd::activeKernels())
{
    GRAPHR_ASSERT(dim_ > 0, "crossbar dimension must be > 0");
    levelPlanes_.resize(static_cast<std::size_t>(dim_) * dim_ *
                        slices_);
    rawPlane_.resize(static_cast<std::size_t>(dim_) * dim_);
    rowMask_.assign((dim_ + 63) / 64, 0);
}

void
Crossbar::clear()
{
    // Only occupied wordlines can hold nonzero cells, so zero those
    // row spans (in every slice plane and the packed raw plane)
    // instead of reprogramming every cell: O(occupied rows), not
    // O(dim^2 * slices).
    forEachOccupiedRow([this](std::uint32_t row) {
        const std::size_t row_off =
            static_cast<std::size_t>(row) * dim_;
        for (int s = 0; s < slices_; ++s) {
            std::uint8_t *first =
                levelPlanes_.data() + planeOffset(s) + row_off;
            std::fill(first, first + dim_, std::uint8_t{0});
        }
        std::fill(rawPlane_.begin() +
                      static_cast<std::ptrdiff_t>(row_off),
                  rawPlane_.begin() +
                      static_cast<std::ptrdiff_t>(row_off + dim_),
                  FixedPoint::Raw{0});
    });
    std::fill(rowMask_.begin(), rowMask_.end(), 0);
}

void
Crossbar::programValue(std::uint32_t row, std::uint32_t col,
                       FixedPoint value)
{
    GRAPHR_ASSERT(row < dim_ && col < dim_, "program (", row, ",", col,
                  ") outside ", dim_, "x", dim_, " crossbar");
    const std::size_t cell_off =
        static_cast<std::size_t>(row) * dim_ + col;
    for (int s = 0; s < slices_; ++s)
        levelPlanes_[planeOffset(s) + cell_off] = value.slice(s);
    rawPlane_[cell_off] = value.raw();
    // Programming zero leaves the cells at level 0; the mask only
    // needs to cover rows that may hold nonzeros.
    if (value.raw() != 0)
        rowMask_[row >> 6] |= std::uint64_t{1} << (row & 63);
}

std::vector<std::uint64_t>
Crossbar::mvmRaw(const std::vector<FixedPoint::Raw> &input_raw) const
{
    GRAPHR_ASSERT(input_raw.size() == dim_, "input length ",
                  input_raw.size(), " != crossbar dim ", dim_);
    std::vector<std::uint64_t> columns(dim_, 0);

    // Unoccupied wordlines hold only level-0 cells: they contribute
    // nothing to any bitline and never consume a variation RNG draw,
    // so restricting the row walk to the occupied set (in ascending
    // order, straight off the bitmask — no per-call allocation) is
    // bit-exact and RNG-neutral. An empty crossbar skips the column
    // loops and S/A recombination entirely.
    if (!anyRowOccupied())
        return columns;
    mvmRowsCounter().add(maskedRowCount());

    if (variationSigma_ <= 0.0) {
        // Exact fast path: slice recombination distributes over the
        // row sum, so the full slice-serial walk collapses to
        // columns[c] += input[row] * raw[row][c] per occupied row —
        // a unit-stride AXPY over the packed plane, dispatched to
        // the active SIMD tier. Pure mod-2^64 integer arithmetic in
        // every tier and in the slice-serial walk, hence
        // byte-identical results; zero inputs contribute nothing and
        // may be skipped outright.
        const simd::Kernels &kernels = *kernels_;
        forEachOccupiedRow([&](std::uint32_t row) {
            const std::uint64_t in = input_raw[row];
            if (in == 0)
                return;
            kernels.mvmRowAxpy(
                rawPlane_.data() +
                    static_cast<std::size_t>(row) * dim_,
                dim_, in, columns.data());
        });
        return columns;
    }

    // Variation path: the hardware-shaped slice-serial walk, kept
    // scalar so every cell read draws noise in the documented order
    // (input slice, column, weight slice, ascending occupied row).
    // Outer loop: input slices applied by the driver, LSB first.
    // Inner: weight slices summed on bitlines, recombined by S/A.
    for (int in_s = 0; in_s < slices_; ++in_s) {
        for (std::uint32_t col = 0; col < dim_; ++col) {
            std::array<std::uint64_t, kSlicesPerValue> partials{};
            for (int w_s = 0; w_s < slices_; ++w_s) {
                std::uint64_t bitline = 0;
                forEachOccupiedRow([&](std::uint32_t row) {
                    const std::uint64_t in_nib =
                        (input_raw[row] >> (in_s * kCellBits)) & 0xF;
                    bitline += in_nib *
                               readLevel(levelAt(row, col, w_s));
                });
                partials[static_cast<std::size_t>(w_s)] = bitline;
            }
            // Shift-and-add across weight slices, then shift by the
            // input slice position.
            const std::uint64_t combined = FixedPoint::shiftAdd(partials);
            columns[col] += combined << (in_s * kCellBits);
        }
    }
    return columns;
}

std::vector<FixedPoint::Raw>
Crossbar::selectRow(std::uint32_t row) const
{
    GRAPHR_ASSERT(row < dim_, "row ", row, " outside crossbar");
    std::vector<FixedPoint::Raw> out(dim_, 0);
    // An unoccupied wordline reads all-zero without touching the RNG
    // (level-0 cells are exact), so skip its per-column slice
    // recombination outright.
    if (!rowMayHoldNonzero(row))
        return out;
    if (variationSigma_ <= 0.0) {
        // Exact read: the packed raw plane already holds the
        // recombined wordline — one contiguous copy.
        const std::size_t row_off =
            static_cast<std::size_t>(row) * dim_;
        std::copy(rawPlane_.begin() +
                      static_cast<std::ptrdiff_t>(row_off),
                  rawPlane_.begin() +
                      static_cast<std::ptrdiff_t>(row_off + dim_),
                  out.begin());
        return out;
    }
    for (std::uint32_t col = 0; col < dim_; ++col) {
        FixedPoint::Raw raw = 0;
        for (int s = slices_ - 1; s >= 0; --s) {
            raw = static_cast<FixedPoint::Raw>(
                (raw << kCellBits) | readLevel(levelAt(row, col, s)));
        }
        out[col] = raw;
    }
    return out;
}

std::uint32_t
Crossbar::occupiedRows() const
{
    // The mask is conservative (a nonzero cell may have been
    // reprogrammed to zero), so verify the cells of masked rows —
    // unmasked rows are guaranteed empty and need no scan. The packed
    // raw plane is consistent with the slice planes, so one uint16
    // span check per row suffices.
    std::uint32_t count = 0;
    forEachOccupiedRow([this, &count](std::uint32_t row) {
        const FixedPoint::Raw *first =
            rawPlane_.data() + static_cast<std::size_t>(row) * dim_;
        const bool occupied =
            std::any_of(first, first + dim_,
                        [](FixedPoint::Raw v) { return v != 0; });
        if (occupied)
            ++count;
    });
    return count;
}

std::vector<std::uint32_t>
Crossbar::occupiedRowIndices() const
{
    std::vector<std::uint32_t> rows;
    forEachOccupiedRow(
        [&rows](std::uint32_t row) { rows.push_back(row); });
    return rows;
}

} // namespace graphr
