/**
 * @file
 * Multi-level ReRAM cell model.
 *
 * A cell stores one kCellBits-bit slice as a conductance level
 * between 1/HRS and 1/LRS. The functional model is digital-exact by
 * default (the paper argues graph algorithms tolerate the analog
 * imprecision; our variation model makes that claim testable).
 */

#ifndef GRAPHR_RRAM_CELL_HH
#define GRAPHR_RRAM_CELL_HH

#include <cstdint>

#include "common/random.hh"
#include "rram/device_params.hh"

namespace graphr
{

/** One multi-level ReRAM cell. */
class Cell
{
  public:
    Cell() = default;

    /** Program a slice value in [0, levels). */
    void
    program(std::uint8_t level)
    {
        level_ = level;
    }

    /** Stored level, exact. */
    std::uint8_t level() const { return level_; }

    /**
     * Conductance in siemens for a given parameter set: linear
     * interpolation between 1/HRS (level 0) and 1/LRS (max level),
     * the standard dot-product-engine mapping.
     */
    double
    conductance(const DeviceParams &params) const
    {
        const double g_min = 1.0 / params.hrsOhm;
        const double g_max = 1.0 / params.lrsOhm;
        const double frac = static_cast<double>(level_) /
                            static_cast<double>(params.cellLevels() - 1);
        return g_min + frac * (g_max - g_min);
    }

    /**
     * Read the level back with optional programming variation: the
     * stored level is perturbed by Gaussian noise of the given sigma
     * (in level units) and clamped/rounded. sigma 0 is exact. Cells
     * left in the fully-OFF state (level 0, HRS) are stable and read
     * exactly — programming variation affects tuned intermediate
     * states ([7, 26] tune those iteratively to ~1% accuracy).
     */
    std::uint8_t
    readWithVariation(double sigma_levels, Rng &rng,
                      int num_levels) const
    {
        return perturbLevel(level_, sigma_levels, rng, num_levels);
    }

    /**
     * The variation model on a bare level, for storage that keeps
     * cell levels in structure-of-arrays planes rather than Cell
     * objects (rram/crossbar.hh). Level 0 never consumes an RNG draw
     * — the guarantee the crossbar's occupancy and SIMD fast paths
     * rely on.
     */
    static std::uint8_t
    perturbLevel(std::uint8_t level, double sigma_levels, Rng &rng,
                 int num_levels)
    {
        if (sigma_levels <= 0.0 || level == 0)
            return level;
        const double noisy =
            static_cast<double>(level) + rng.normal(0.0, sigma_levels);
        const double clamped =
            std::max(0.0, std::min(noisy,
                                   static_cast<double>(num_levels - 1)));
        return static_cast<std::uint8_t>(clamped + 0.5);
    }

  private:
    std::uint8_t level_ = 0;
};

} // namespace graphr

#endif // GRAPHR_RRAM_CELL_HH
