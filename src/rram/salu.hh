/**
 * @file
 * Simple ALU (sALU) performing the configurable reduce operation
 * (paper Fig. 15: add for PageRank, min for SSSP/BFS).
 */

#ifndef GRAPHR_RRAM_SALU_HH
#define GRAPHR_RRAM_SALU_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace graphr
{

/** Reduce operation the sALU is configured with. */
enum class SaluOp
{
    kAdd, ///< parallel MAC algorithms (PageRank, SpMV, CF)
    kMin, ///< parallel add-op algorithms (BFS, SSSP)
    kMax, ///< provided for completeness (e.g. widest-path)
};

/**
 * The sALU combines a vector of freshly computed values with the
 * running register (RegO) contents element-wise. It also counts the
 * operations it performed so the node can charge time and energy.
 */
class Salu
{
  public:
    explicit Salu(SaluOp op) : op_(op) {}

    SaluOp op() const { return op_; }
    void configure(SaluOp op) { op_ = op; }

    /** Ops performed since construction/reset. */
    std::uint64_t opCount() const { return opCount_; }
    void resetCount() { opCount_ = 0; }

    /** Reduce one scalar pair. */
    double
    reduce(double reg_value, double new_value)
    {
        ++opCount_;
        switch (op_) {
          case SaluOp::kAdd:
            return reg_value + new_value;
          case SaluOp::kMin:
            return std::min(reg_value, new_value);
          case SaluOp::kMax:
            return std::max(reg_value, new_value);
        }
        GRAPHR_PANIC("unknown sALU op");
    }

    /**
     * Element-wise reduce of new_values into reg (paper Fig. 15).
     * Vectors must be the same length.
     */
    void
    reduceInto(std::vector<double> &reg,
               const std::vector<double> &new_values)
    {
        GRAPHR_ASSERT(reg.size() == new_values.size(),
                      "sALU vector length mismatch: ", reg.size(), " vs ",
                      new_values.size());
        for (std::size_t i = 0; i < reg.size(); ++i)
            reg[i] = reduce(reg[i], new_values[i]);
    }

  private:
    SaluOp op_;
    std::uint64_t opCount_ = 0;
};

} // namespace graphr

#endif // GRAPHR_RRAM_SALU_HH
