#include "energy.hh"

namespace graphr
{

EnergyEvents &
EnergyEvents::operator+=(const EnergyEvents &other)
{
    arrayWrites += other.arrayWrites;
    arrayReads += other.arrayReads;
    adcSamples += other.adcSamples;
    sampleHolds += other.sampleHolds;
    shiftAdds += other.shiftAdds;
    saluOps += other.saluOps;
    regAccesses += other.regAccesses;
    memBytes += other.memBytes;
    return *this;
}

double
EnergyBreakdown::total() const
{
    return write + read + adc + sampleHold + shiftAdd + salu + reg +
           memory + peripheral;
}

EnergyBreakdown
EnergyLedger::breakdown() const
{
    constexpr double pj = 1e-12;
    EnergyBreakdown b;
    b.write = events_.arrayWrites * params_.writeEnergyPj * pj;
    b.read = events_.arrayReads * params_.readEnergyPj * pj;
    b.adc = events_.adcSamples * params_.adcEnergyPerSamplePj * pj;
    b.sampleHold = events_.sampleHolds * params_.sampleHoldEnergyPj * pj;
    b.shiftAdd = events_.shiftAdds * params_.shiftAddEnergyPj * pj;
    b.salu = events_.saluOps * params_.saluEnergyPj * pj;
    b.reg = events_.regAccesses * params_.regAccessEnergyPj * pj;
    b.memory = events_.memBytes * params_.memReadEnergyPjPerByte * pj;
    return b;
}

} // namespace graphr
