/**
 * @file
 * NVSim-style area model of a GraphR node.
 *
 * The paper argues ReRAM crossbars give "massive parallel analog
 * operations with low hardware and energy cost"; this model makes
 * the hardware-cost side quantitative, in the style of the
 * NVSim/ISAAC area accounting it cites: per-component footprints
 * (crossbar cells at 4F^2, ADCs, S/H, drivers, shift-and-add, sALU,
 * registers, controller) composed over the node configuration. Used
 * by the crossbar-size and GE-count ablations to expose the area
 * side of each design point.
 */

#ifndef GRAPHR_RRAM_AREA_HH
#define GRAPHR_RRAM_AREA_HH

#include <ostream>

#include "graph/partition.hh"
#include "rram/device_params.hh"

namespace graphr
{

/** Component area parameters (um^2 unless noted). */
struct AreaParams
{
    /** Technology feature size in nm (cell area scales as 4F^2). */
    double featureNm = 32.0;
    /** ADC area (8-bit ~1 GSps SAR class, Murmann survey). */
    double adcUm2 = 3000.0;
    /** Sample-and-hold per bitline. */
    double sampleHoldUm2 = 10.0;
    /** Driver (DAC + wordline buffer) per wordline. */
    double driverUm2 = 50.0;
    /** Shift-and-add unit per crossbar. */
    double shiftAddUm2 = 250.0;
    /** sALU lane per bitline group. */
    double saluLaneUm2 = 400.0;
    /** Register file per KB (CACTI-class SRAM). */
    double regUm2PerKb = 1500.0;
    /** Controller + sequencing overhead per GE. */
    double controllerUm2PerGe = 20000.0;
};

/** Area breakdown of one GraphR node in mm^2. */
struct AreaBreakdown
{
    double crossbars = 0.0;
    double adcs = 0.0;
    double sampleHolds = 0.0;
    double drivers = 0.0;
    double shiftAdds = 0.0;
    double salus = 0.0;
    double registers = 0.0;
    double controller = 0.0;

    double total() const;
    void print(std::ostream &os) const;
};

/**
 * Compute the node's area from its tiling and device configuration.
 *
 * @param tiling C/N/G configuration
 * @param device cell resolution (slices multiply the physical
 *        bitlines) and ADC provisioning
 * @param params technology constants
 */
AreaBreakdown nodeArea(const TilingParams &tiling,
                       const DeviceParams &device,
                       const AreaParams &params = AreaParams{});

} // namespace graphr

#endif // GRAPHR_RRAM_AREA_HH
