/**
 * @file
 * On-disk preprocessing store: persistent TilePlan artifacts.
 *
 * GraphR's workflow is split into an offline preprocessing step (edge
 * sort into streaming-apply order, tiling, sparsity analysis — paper
 * section 3.4) and an online execution step. The in-process PlanCache
 * already memoises plans within one process; this store makes them
 * durable across processes, so a cold start loads the prepared
 * artifact with sequential I/O instead of re-paying the O(E log E)
 * sort.
 *
 * File format (one file per (graph fingerprint, tiling), all fields
 * native-endian — these are local cache artifacts, not interchange):
 *
 *   header (88 bytes):
 *     u32  magic "GPLN"
 *     u32  format version (currently 2)
 *     u64  graph fingerprint (graphFingerprint, FNV-1a)
 *     u64  vertex count
 *     u32  crossbarDim, u32 crossbarsPerGe, u32 numGe, u32 blockSize
 *     u64  edge count
 *     u64  non-empty tile count
 *     u64  total nnz (TileMetaTable invariant)
 *     u64  payload byte count
 *     u64  payload checksum (FNV-1a over the payload bytes)
 *     u64  header checksum (FNV-1a over the 80 bytes above)
 *   payload (format v2):
 *     u32  codec tag — "DLT1" (compressed, the default) or "RAW0"
 *     body per codec:
 *       DLT1  the bit-packed delta-coded edge stream of
 *             store/edge_codec.hh: per-tile local-cell-ID delta
 *             streams (fixed-width low-bits plane + zero-run/varint
 *             exception stream) with per-tile weight modes. Tile
 *             spans are implicit in the stream and the per-tile
 *             metadata is recomputed on load — warm results stay
 *             byte-identical because the recomputation is the same
 *             deterministic code a fresh prepare runs.
 *       RAW0  the uncompressed layout (GRAPHR_STORE_RAW=1 saves, and
 *             the automatic fallback for streams so duplicate-heavy
 *             they would trip the codec's decode-expansion bound):
 *         edges  edge count x (u32 src, u32 dst, f64 weight) in
 *                streaming-apply order (the sorted result, byte-exact)
 *         spans  tile count x (u64 tileIndex, u64 firstEdge,
 *                u64 numEdges)
 *         meta   tile count x TileMeta record (fixed fields + rowNnz[])
 *
 * Format v1 (the RAW0 layout with no codec tag) is not migrated:
 * version-gated loads reject it and the caller transparently
 * re-prepares and re-saves, per the store's versioning contract.
 *
 * Loads validate magic -> version -> header checksum -> fingerprint &
 * tiling -> payload size & checksum before any payload is trusted;
 * every failure degrades to a miss (fresh prepare), never a crash —
 * each such degradation is published as `store.degraded_loads`.
 * Saves write to a unique temporary in the same directory, fsync it,
 * atomically rename over the final name, then fsync the directory:
 * readers only ever see complete files, and a crash at any point
 * leaves either the old artifact or the new one, never torn bytes
 * under the final name. Reads go through mmap where available, with a
 * chunked-read fallback (also selectable via GRAPHR_STORE_NO_MMAP=1);
 * transient I/O errors (EINTR/EAGAIN, short transfers) are retried
 * with bounded backoff (`store.retries`). Both paths carry
 * fault-injection sites (common/failpoint.hh, the `store.*` names)
 * so the degradation and durability contracts are exercised by
 * tests/chaos.sh rather than merely asserted here.
 */

#ifndef GRAPHR_STORE_PLAN_STORE_HH
#define GRAPHR_STORE_PLAN_STORE_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graphr/engine/tile_plan.hh"

namespace graphr
{

/** Unusable store directory or failed artifact write. */
class StoreError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Driver-facing description of an artifact store. Plumbed through
 * RunSpec/SweepSpec and the graphr_run --plan-dir flag; an empty
 * planDir means "no store".
 */
struct StoreSpec
{
    /** Directory holding .gplan artifacts (created on first use). */
    std::string planDir;
};

/** One artifact as seen by listing (the `store stats` subcommand). */
struct PlanArtifactInfo
{
    std::string file; ///< file name within the store directory
    std::uint64_t bytes = 0;
    bool valid = false;  ///< full header + payload validation passed
    std::string issue;   ///< why invalid ("" when valid)
    // Header fields (meaningful when the header was readable):
    std::uint32_t version = 0; ///< on-disk format version (0: unread)
    std::uint64_t fingerprint = 0;
    TilingParams tiling;
    std::uint64_t vertices = 0;
    std::uint64_t edges = 0;
    std::uint64_t tiles = 0;
    std::uint64_t payloadBytes = 0; ///< payload size per the header
    std::string codec; ///< payload codec: "delta", "raw", "" unknown
};

/**
 * Directory of persistent TilePlan artifacts. Thread-safe: loads are
 * read-only, saves are write-then-rename with unique temporaries, so
 * concurrent writers of the same key race benignly (last rename
 * wins, every version is complete and valid) and readers never see a
 * partial file. Failure split: load() treats every defect as a miss
 * (nullptr — the caller re-prepares), while save() throws StoreError
 * on I/O failure, because losing an artifact the user asked to
 * persist must be loud.
 */
class PlanStore
{
  public:
    static constexpr std::uint32_t kFormatVersion = 2;

    /** Load/save/reject counters since construction. */
    struct Stats
    {
        std::uint64_t loadHits = 0;    ///< valid artifact deserialised
        std::uint64_t loadMisses = 0;  ///< no file for the key
        std::uint64_t loadRejects = 0; ///< file present but invalid
        std::uint64_t saves = 0;
    };

    /** How a store directory is opened. */
    enum class Mode
    {
        /** Create the directory if needed and require writability. */
        kReadWrite,
        /** Require an existing directory; never write (listing). */
        kReadOnly,
    };

    /**
     * Open the store directory. Throws StoreError with an actionable
     * message when the path is unusable for the requested mode
     * (missing and uncreatable, not a directory, or — for kReadWrite
     * — not writable).
     */
    explicit PlanStore(const std::string &directory,
                       Mode mode = Mode::kReadWrite);

    const std::string &directory() const { return directory_; }

    /**
     * Load the artifact for (fingerprint, tiling). Returns nullptr on
     * any miss: absent file, wrong magic/version, checksum mismatch,
     * stale fingerprint, tiling mismatch, or truncation — the caller
     * falls back to a fresh prepare.
     */
    TilePlanPtr load(std::uint64_t fingerprint,
                     const TilingParams &tiling) const;

    /**
     * Persist a plan (atomic write-then-rename). Throws StoreError on
     * I/O failure; returns the final file path.
     */
    std::string save(const TilePlan &plan,
                     const TilingParams &tiling) const;

    /** Whether an artifact file exists for the key (no validation). */
    bool contains(std::uint64_t fingerprint,
                  const TilingParams &tiling) const;

    /** Scan the directory, fully validating each .gplan artifact. */
    std::vector<PlanArtifactInfo> list() const;

    Stats
    stats() const
    {
        return Stats{loadHits_.load(std::memory_order_relaxed),
                     loadMisses_.load(std::memory_order_relaxed),
                     loadRejects_.load(std::memory_order_relaxed),
                     saves_.load(std::memory_order_relaxed)};
    }

    /** Canonical artifact file name for a key. */
    static std::string fileName(std::uint64_t fingerprint,
                                const TilingParams &tiling);

  private:
    std::string path(std::uint64_t fingerprint,
                     const TilingParams &tiling) const;

    std::string directory_;
    mutable std::atomic<std::uint64_t> loadHits_{0};
    mutable std::atomic<std::uint64_t> loadMisses_{0};
    mutable std::atomic<std::uint64_t> loadRejects_{0};
    mutable std::atomic<std::uint64_t> saves_{0};
};

} // namespace graphr

#endif // GRAPHR_STORE_PLAN_STORE_HH
