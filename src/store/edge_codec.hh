/**
 * @file
 * Bit-packed, delta-coded edge payload codec for plan artifacts.
 *
 * A sorted edge list is already tile-clustered: within one tile the
 * global order IDs are non-decreasing, and consecutive IDs are close
 * (GraphR's streaming-apply order walks a tile's cells column-major).
 * The codec exploits exactly that — edges become per-tile streams of
 * local-cell-ID deltas, split into a fixed-width low-bits plane plus
 * a zero-run/varint exception stream for the rare high parts, with
 * per-tile weight modes so the common all-1.0 case costs nothing:
 *
 *   stream   := varint tileCount
 *               varint edgeCount
 *               tile*                      (tileCount records)
 *   tile     := varint tileIndexDelta     (first record: absolute
 *                                          tileIndex; later: gap to
 *                                          the previous tile, >= 1)
 *               varint numEdges           (>= 1)
 *               u8     flags              (bits 0..1: weight mode,
 *                                          bits 2..7: k, the packed
 *                                          low-bits width)
 *               varint firstLocalId       (cell order ID within the
 *                                          tile, < tileCapacity)
 *               [mode 1] u64 weightBits   (bit pattern shared by
 *                                          every edge of the tile)
 *               low-bits plane            ((numEdges-1) x k bits of
 *                                          each delta, LSB-first,
 *                                          padded to a whole byte)
 *               exception stream          (zero-run/varint coding of
 *                                          high[i] = delta[i] >> k:
 *                                          alternating varint
 *                                          zero-run length and varint
 *                                          non-zero value until all
 *                                          numEdges-1 high parts are
 *                                          covered)
 *               [mode 2] numEdges x u64 weightBits, stream order
 *
 * Weight modes: 0 = every weight is bit-exactly 1.0 (the default
 * generator case), 1 = every weight shares one bit pattern, 2 = raw
 * per-edge f64 bits. All comparisons are on bit patterns, never
 * float equality, so -0.0, NaN payloads and denormals round-trip
 * byte-identically.
 *
 * Varints are LEB128 (7 bits per byte, little-endian groups). The
 * decoder validates every structural invariant — tile order, local
 * IDs inside the tile capacity, endpoints inside the real vertex
 * range, declared totals, no trailing bytes — and throws CodecError
 * on the first violation; the plan store turns that into a rejected
 * load (degrade to a fresh prepare, never a crash).
 */

#ifndef GRAPHR_STORE_EDGE_CODEC_HH
#define GRAPHR_STORE_EDGE_CODEC_HH

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/partition.hh"
#include "graph/preprocess.hh"

namespace graphr
{

/** Malformed or inconsistent compressed edge stream. */
class CodecError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Decode-expansion bound: a stream may not declare more edges than
 * this many per encoded byte. Duplicate-heavy tiles compress without
 * limit (a run of equal cells is one varint), so without a cap a
 * hand-crafted 100-byte artifact could declare 2^40 edges and force
 * an unbounded allocation before any data is decoded. The writer
 * falls back to the raw payload for streams past the bound, so every
 * artifact the store writes is loadable.
 */
constexpr std::uint64_t kMaxEdgesPerStreamByte = 1024;

/**
 * Encode an ordered, tiled edge list (the products of the
 * preprocessing sort) into the delta-stream format. Throws CodecError
 * if the input violates canonical streaming order — which indicates a
 * caller bug, not bad data.
 */
std::vector<unsigned char>
encodeEdgeStream(const GridPartition &partition,
                 std::span<const Edge> edges,
                 std::span<const TileSpan> tiles);

/**
 * Streaming decoder over an encoded byte range (not owned; must
 * outlive the decoder). Implements the engine's TileChunkSource seam:
 * each next() materialises exactly one tile's edges in a reused
 * scratch buffer, so a consumer that streams tiles keeps O(tile)
 * decode state while only the compressed bytes are read from disk.
 * Every method throws CodecError on a malformed stream.
 */
class EdgeStreamDecoder final : public TileChunkSource
{
  public:
    EdgeStreamDecoder(const GridPartition &partition,
                      const unsigned char *data, std::size_t size);

    /** Declared totals (validated against the whole stream by the
     *  time next() returns false). */
    std::uint64_t totalEdges() const override { return edgeCount_; }
    std::uint64_t totalTiles() const override { return tileCount_; }

    bool next(Chunk &chunk) override;

  private:
    std::uint64_t readVarint(const char *what);

    const GridPartition &partition_;
    const unsigned char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;

    std::uint64_t tileCount_ = 0;
    std::uint64_t edgeCount_ = 0;
    std::uint64_t tilesDecoded_ = 0;
    std::uint64_t edgesDecoded_ = 0;
    std::uint64_t prevTileIndex_ = 0;
    std::vector<Edge> scratch_;
    std::vector<std::uint64_t> highs_;
};

} // namespace graphr

#endif // GRAPHR_STORE_EDGE_CODEC_HH
