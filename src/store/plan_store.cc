#include "plan_store.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/checksum.hh"
#include "common/failpoint.hh"
#include "common/logging.hh"
#include "perf/counters.hh"
#include "store/edge_codec.hh"

#if defined(__unix__) || defined(__APPLE__)
#define GRAPHR_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace graphr
{

namespace fs = std::filesystem;

namespace
{

constexpr std::uint32_t kMagic = 'G' | ('P' << 8) | ('L' << 16) |
                                 ('N' << 24);
/** Payload codec tags (first four payload bytes, format v2+). */
constexpr std::uint32_t kCodecRaw = 'R' | ('A' << 8) | ('W' << 16) |
                                    ('0' << 24);
constexpr std::uint32_t kCodecDelta = 'D' | ('L' << 8) | ('T' << 16) |
                                      ('1' << 24);
constexpr std::size_t kHeaderBytes = 88;
/** Bytes of the header covered by the header checksum. */
constexpr std::size_t kHeaderChecksummedBytes = kHeaderBytes - 8;
constexpr std::size_t kEdgeRecordBytes = 4 + 4 + 8;
constexpr std::size_t kSpanRecordBytes = 3 * 8;
/** Fixed (pre-rowNnz) part of one serialised TileMeta record. */
constexpr std::size_t kMetaFixedBytes = 4 * 8 + 2 * 4 + 2 * 8 + 4;

/** Append-only little buffer builder for headers and payloads. */
class ByteWriter
{
  public:
    template <typename T>
    void
    raw(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const std::size_t at = bytes_.size();
        bytes_.resize(at + sizeof(T));
        std::memcpy(bytes_.data() + at, &value, sizeof(T));
    }

    void
    append(const unsigned char *data, std::size_t n)
    {
        bytes_.insert(bytes_.end(), data, data + n);
    }

    const std::vector<unsigned char> &bytes() const { return bytes_; }

    void reserve(std::size_t n) { bytes_.reserve(n); }

  private:
    std::vector<unsigned char> bytes_;
};

/** Bounds-checked sequential reader over a validated byte range. */
class ByteReader
{
  public:
    ByteReader(const unsigned char *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    template <typename T>
    bool
    raw(T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (size_ - pos_ < sizeof(T))
            return false;
        std::memcpy(&value, data_ + pos_, sizeof(T));
        pos_ += sizeof(T);
        return true;
    }

    std::size_t remaining() const { return size_ - pos_; }

  private:
    const unsigned char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

#ifdef GRAPHR_STORE_HAVE_MMAP
/**
 * Bounded retry policy for transient I/O errors (EINTR/EAGAIN and
 * short transfers): an operation is retried at most this many times,
 * with a small exponential backoff, before the error is treated as
 * permanent. Every retry is published as `store.retries`.
 */
constexpr int kMaxIoAttempts = 4;

void
noteRetry()
{
    static perf::Counter &retries =
        perf::Registry::instance().counter("store.retries");
    retries.add();
}

void
backoff(int attempt)
{
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1 << (attempt > 0 ? attempt - 1 : 0)));
}

/**
 * write() all @p n bytes, resuming short writes (injectable via
 * store.write.short) and retrying bounded transient errors. On a
 * permanent failure fills @p why and returns false.
 */
bool
writeFull(int fd, const unsigned char *data, std::size_t n,
          std::string &why)
{
    int transient = 0;
    while (n > 0) {
        std::size_t len = n;
        if (len > 1 && GRAPHR_FAILPOINT("store.write.short"))
            len = 1; // deterministic short write; the loop resumes
        const ssize_t written = ::write(fd, data, len);
        if (written < 0) {
            if ((errno == EINTR || errno == EAGAIN) &&
                ++transient < kMaxIoAttempts) {
                noteRetry();
                backoff(transient);
                continue;
            }
            why = std::strerror(errno);
            return false;
        }
        if (static_cast<std::size_t>(written) < n)
            noteRetry(); // short transfer: resumed, counted, no sleep
        data += written;
        n -= static_cast<std::size_t>(written);
    }
    return true;
}
#endif

/** Decoded artifact header. */
struct Header
{
    std::uint32_t version = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t vertices = 0;
    TilingParams tiling;
    std::uint64_t edges = 0;
    std::uint64_t tiles = 0;
    std::uint64_t totalNnz = 0;
    std::uint64_t payloadBytes = 0;
    std::uint64_t payloadChecksum = 0;
};

/**
 * Whole-file bytes, mmap'd where possible. The chunked-read fallback
 * covers platforms without mmap and the GRAPHR_STORE_NO_MMAP=1
 * escape hatch (used by tests to exercise both paths).
 */
class FileBytes
{
  public:
    FileBytes() = default;
    FileBytes(const FileBytes &) = delete;
    FileBytes &operator=(const FileBytes &) = delete;

    ~FileBytes()
    {
#ifdef GRAPHR_STORE_HAVE_MMAP
        if (map_ != nullptr)
            ::munmap(map_, mapSize_);
#endif
    }

    /** Read (or map) a whole file; false on any I/O failure. */
    bool
    read(const std::string &path)
    {
        if (GRAPHR_FAILPOINT("store.open.fail"))
            return false;
#ifdef GRAPHR_STORE_HAVE_MMAP
        const char *no_mmap = std::getenv("GRAPHR_STORE_NO_MMAP");
        if (no_mmap == nullptr || no_mmap[0] == '\0' ||
            no_mmap[0] == '0') {
            if (readMapped(path))
                return true;
            // fall through to the buffered path on mmap failure
        }
#endif
        return readBuffered(path);
    }

    const unsigned char *data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
#ifdef GRAPHR_STORE_HAVE_MMAP
    bool
    readMapped(const std::string &path)
    {
        if (GRAPHR_FAILPOINT("store.mmap.fail"))
            return false; // degrades to the buffered path below
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            return false;
        struct ::stat st = {};
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            return false;
        }
        if (st.st_size == 0) {
            // Nothing to map; an empty artifact is simply invalid.
            ::close(fd);
            data_ = nullptr;
            size_ = 0;
            return true;
        }
        mapSize_ = static_cast<std::size_t>(st.st_size);
        void *map =
            ::mmap(nullptr, mapSize_, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (map == MAP_FAILED) {
            mapSize_ = 0;
            return false;
        }
        map_ = map;
        data_ = static_cast<const unsigned char *>(map);
        size_ = mapSize_;
        return true;
    }
#endif

#ifdef GRAPHR_STORE_HAVE_MMAP
    /**
     * Chunked POSIX read of the whole file. Transient errors
     * (EINTR/EAGAIN — injectable via store.read.eintr) are retried
     * with bounded backoff; a premature EOF (store.read.short) simply
     * yields a truncated buffer, which header/payload validation then
     * rejects — the degrade-to-fresh-prepare path, never a crash.
     */
    bool
    readBuffered(const std::string &path)
    {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            return false;
        constexpr std::size_t kChunk = 1 << 20;
        buffer_.clear();
        int transient = 0;
        for (;;) {
            const std::size_t at = buffer_.size();
            buffer_.resize(at + kChunk);
            ssize_t n;
            if (GRAPHR_FAILPOINT("store.read.eintr")) {
                n = -1;
                errno = EINTR;
            } else if (GRAPHR_FAILPOINT("store.read.short")) {
                n = 0; // the file "ends" mid-read: truncated artifact
            } else {
                n = ::read(fd, buffer_.data() + at, kChunk);
            }
            if (n < 0) {
                buffer_.resize(at);
                if ((errno == EINTR || errno == EAGAIN) &&
                    ++transient < kMaxIoAttempts) {
                    noteRetry();
                    backoff(transient);
                    continue;
                }
                ::close(fd);
                return false;
            }
            buffer_.resize(at + static_cast<std::size_t>(n));
            if (n == 0)
                break;
        }
        ::close(fd);
        data_ = buffer_.data();
        size_ = buffer_.size();
        return true;
    }
#else
    bool
    readBuffered(const std::string &path)
    {
        std::ifstream is(path, std::ios::binary);
        if (!is)
            return false;
        constexpr std::size_t kChunk = 1 << 20;
        buffer_.clear();
        while (is) {
            const std::size_t at = buffer_.size();
            buffer_.resize(at + kChunk);
            is.read(reinterpret_cast<char *>(buffer_.data() + at),
                    static_cast<std::streamsize>(kChunk));
            buffer_.resize(at +
                           static_cast<std::size_t>(is.gcount()));
        }
        if (!is.eof())
            return false;
        data_ = buffer_.data();
        size_ = buffer_.size();
        return true;
    }
#endif

    std::vector<unsigned char> buffer_;
#ifdef GRAPHR_STORE_HAVE_MMAP
    void *map_ = nullptr;
    std::size_t mapSize_ = 0;
#endif
    const unsigned char *data_ = nullptr;
    std::size_t size_ = 0;
};

void
encodeHeader(ByteWriter &w, const Header &h)
{
    w.raw(kMagic);
    w.raw(h.version);
    w.raw(h.fingerprint);
    w.raw(h.vertices);
    w.raw(h.tiling.crossbarDim);
    w.raw(h.tiling.crossbarsPerGe);
    w.raw(h.tiling.numGe);
    w.raw(h.tiling.blockSize);
    w.raw(h.edges);
    w.raw(h.tiles);
    w.raw(h.totalNnz);
    w.raw(h.payloadBytes);
    w.raw(h.payloadChecksum);
    w.raw(fnv1a64(w.bytes().data(), kHeaderChecksummedBytes));
}

/**
 * Decode and structurally validate a header. On failure fills
 * @p issue and returns false. Validation order matters: the magic
 * identifies the file type, the version gates the layout (an unknown
 * version cannot be checksum-verified against this layout), and only
 * then are checksums meaningful.
 */
bool
decodeHeader(const unsigned char *data, std::size_t size, Header &h,
             std::string &issue)
{
    if (size < kHeaderBytes) {
        issue = "truncated header (" + std::to_string(size) +
                " bytes, need " + std::to_string(kHeaderBytes) + ")";
        return false;
    }
    ByteReader r(data, kHeaderBytes);
    std::uint32_t magic = 0;
    r.raw(magic);
    if (magic != kMagic) {
        issue = "not a plan artifact (bad magic)";
        return false;
    }
    r.raw(h.version);
    if (h.version != PlanStore::kFormatVersion) {
        issue = "unsupported format version " +
                std::to_string(h.version) + " (expected " +
                std::to_string(PlanStore::kFormatVersion) + ")";
        return false;
    }
    r.raw(h.fingerprint);
    r.raw(h.vertices);
    r.raw(h.tiling.crossbarDim);
    r.raw(h.tiling.crossbarsPerGe);
    r.raw(h.tiling.numGe);
    r.raw(h.tiling.blockSize);
    r.raw(h.edges);
    r.raw(h.tiles);
    r.raw(h.totalNnz);
    r.raw(h.payloadBytes);
    r.raw(h.payloadChecksum);
    std::uint64_t header_checksum = 0;
    r.raw(header_checksum);
    if (fnv1a64(data, kHeaderChecksummedBytes) != header_checksum) {
        issue = "header checksum mismatch";
        return false;
    }
    if (size - kHeaderBytes != h.payloadBytes) {
        issue = "payload size mismatch (header says " +
                std::to_string(h.payloadBytes) + ", file has " +
                std::to_string(size - kHeaderBytes) + ")";
        return false;
    }
    // Field sanity, mirroring GraphRConfig::validate and
    // GridPartition's preconditions: an accepted header must be safe
    // to build a partition from and to size allocations by (a
    // checksummed file can still come from a buggy writer).
    if (h.vertices == 0 ||
        h.vertices > std::numeric_limits<VertexId>::max()) {
        issue = "vertex count out of range";
        return false;
    }
    if (h.tiling.crossbarDim == 0 || h.tiling.crossbarDim > 64 ||
        h.tiling.crossbarsPerGe == 0 || h.tiling.numGe == 0) {
        issue = "tiling parameters out of range";
        return false;
    }
    const std::uint64_t cxn =
        static_cast<std::uint64_t>(h.tiling.crossbarDim) *
        h.tiling.crossbarsPerGe;
    if (cxn > std::numeric_limits<std::uint64_t>::max() /
                  h.tiling.numGe) {
        issue = "tile width overflows";
        return false;
    }
    return true;
}

void
serializePayload(ByteWriter &w, const TilePlan &plan)
{
    const std::span<const Edge> edges = plan.ordered.edges();
    const std::span<const TileSpan> spans = plan.ordered.tiles();
    const std::vector<TileMeta> &meta = plan.meta.tiles();

    std::size_t meta_bytes = 0;
    for (const TileMeta &m : meta)
        meta_bytes += kMetaFixedBytes + m.rowNnz.size() * 4;
    w.reserve(edges.size() * kEdgeRecordBytes +
              spans.size() * kSpanRecordBytes + meta_bytes);

    for (const Edge &e : edges) {
        w.raw(e.src);
        w.raw(e.dst);
        w.raw(static_cast<double>(e.weight));
    }
    for (const TileSpan &s : spans) {
        w.raw(s.tileIndex);
        w.raw(s.firstEdge);
        w.raw(s.numEdges);
    }
    for (const TileMeta &m : meta) {
        w.raw(m.tileIndex);
        w.raw(m.row0);
        w.raw(m.col0);
        w.raw(m.nnz);
        w.raw(m.crossbarsUsed);
        w.raw(m.maxRowsProgrammed);
        w.raw(m.rowMask);
        w.raw(m.nnzColumns);
        w.raw(static_cast<std::uint32_t>(m.rowNnz.size()));
        for (const std::uint32_t n : m.rowNnz)
            w.raw(n);
    }
}

/** Deserialised payload, ready to assemble into a TilePlan. */
struct PayloadParts
{
    std::vector<Edge> edges;
    std::vector<TileSpan> spans;
    std::vector<TileMeta> meta;
};

/**
 * Parse a checksum-verified payload. Structural and semantic bounds
 * are still checked (a checksummed file can legitimately come from a
 * buggy writer), so every accepted plan is safe for downstream
 * consumers — every failure is a reject, never UB, an abort, or an
 * unbounded allocation.
 */
bool
parsePayload(const Header &h, const unsigned char *data,
             std::size_t size, PayloadParts &parts, std::string &issue)
{
    // Cheap overflow-safe bound before any allocation: the fixed
    // records alone must fit in the declared payload.
    if (h.edges > size / kEdgeRecordBytes ||
        h.tiles > size / kSpanRecordBytes) {
        issue = "record counts exceed payload size";
        return false;
    }
    // Safe after decodeHeader's tiling/vertex validation.
    const GridPartition part(static_cast<VertexId>(h.vertices),
                             h.tiling);
    ByteReader r(data, size);

    parts.edges.resize(h.edges);
    for (Edge &e : parts.edges) {
        double weight = 0.0;
        if (!r.raw(e.src) || !r.raw(e.dst) || !r.raw(weight)) {
            issue = "truncated edge records";
            return false;
        }
        if (e.src >= h.vertices || e.dst >= h.vertices) {
            issue = "edge endpoint outside the vertex range";
            return false;
        }
        e.weight = weight;
    }
    parts.spans.resize(h.tiles);
    std::uint64_t covered = 0; ///< edges accounted for by spans
    std::uint64_t prev_tile = 0;
    for (std::size_t i = 0; i < parts.spans.size(); ++i) {
        TileSpan &s = parts.spans[i];
        if (!r.raw(s.tileIndex) || !r.raw(s.firstEdge) ||
            !r.raw(s.numEdges)) {
            issue = "truncated tile directory";
            return false;
        }
        // The computing path emits non-empty tiles, contiguous over
        // the whole edge list, in strictly increasing tile order —
        // require the same canonical shape back.
        if (s.numEdges == 0 || s.firstEdge != covered ||
            s.numEdges > h.edges - covered) {
            issue = "tile directory is not a contiguous cover of "
                    "the edge list";
            return false;
        }
        if (s.tileIndex >= part.numTiles() ||
            (i > 0 && s.tileIndex <= prev_tile)) {
            issue = "tile directory out of streaming order";
            return false;
        }
        prev_tile = s.tileIndex;
        covered += s.numEdges;
    }
    if (covered != h.edges) {
        issue = "tile directory is not a contiguous cover of "
                "the edge list";
        return false;
    }
    parts.meta.resize(h.tiles);
    std::uint64_t total_nnz = 0;
    for (std::size_t i = 0; i < parts.meta.size(); ++i) {
        TileMeta &m = parts.meta[i];
        std::uint32_t row_nnz_len = 0;
        if (!r.raw(m.tileIndex) || !r.raw(m.row0) || !r.raw(m.col0) ||
            !r.raw(m.nnz) || !r.raw(m.crossbarsUsed) ||
            !r.raw(m.maxRowsProgrammed) || !r.raw(m.rowMask) ||
            !r.raw(m.nnzColumns) || !r.raw(row_nnz_len)) {
            issue = "truncated tile metadata";
            return false;
        }
        if (row_nnz_len != h.tiling.crossbarDim) {
            issue = "tile metadata row count disagrees with tiling";
            return false;
        }
        const TileSpan &s = parts.spans[i];
        if (m.tileIndex != s.tileIndex || m.nnz != s.numEdges) {
            issue = "tile metadata disagrees with the tile directory";
            return false;
        }
        // Every edge of the tile must sit inside the tile's window —
        // the guarantee GraphEngineArray::programTile and the
        // out-of-core block accounting rely on (unsigned wraparound
        // also catches src/dst below the origin).
        for (std::uint64_t e = s.firstEdge;
             e < s.firstEdge + s.numEdges; ++e) {
            if (parts.edges[e].src - m.row0 >= h.tiling.crossbarDim ||
                parts.edges[e].dst - m.col0 >= part.tileWidth()) {
                issue = "tile metadata outside its tile window";
                return false;
            }
        }
        m.rowNnz.resize(row_nnz_len);
        for (std::uint32_t &n : m.rowNnz) {
            if (!r.raw(n)) {
                issue = "truncated tile metadata rows";
                return false;
            }
        }
        total_nnz += m.nnz;
    }
    if (r.remaining() != 0) {
        issue = "trailing bytes after payload";
        return false;
    }
    if (total_nnz != h.totalNnz) {
        issue = "total nnz disagrees with header";
        return false;
    }
    return true;
}

/** Unique temporary suffix so concurrent saves never collide. */
std::string
tempSuffix()
{
#ifdef GRAPHR_STORE_HAVE_MMAP
    const unsigned long uniq = static_cast<unsigned long>(::getpid());
#else
    // No pid available: a per-process random token keeps temp names
    // from colliding across processes sharing one store directory.
    static const unsigned long uniq = [] {
        std::random_device rd;
        return static_cast<unsigned long>(rd()) << 16 ^ rd();
    }();
#endif
    static std::atomic<std::uint64_t> counter{0};
    return ".tmp-" + std::to_string(uniq) + "-" +
           std::to_string(
               counter.fetch_add(1, std::memory_order_relaxed));
}

} // namespace

PlanStore::PlanStore(const std::string &directory, Mode mode)
    : directory_(directory)
{
    if (directory_.empty())
        throw StoreError("plan store directory must not be empty");

    std::error_code ec;
    if (fs::exists(directory_, ec) && !fs::is_directory(directory_, ec)) {
        throw StoreError("plan store path '" + directory_ +
                         "' exists but is not a directory");
    }
    if (mode == Mode::kReadOnly) {
        if (!fs::is_directory(directory_, ec)) {
            throw StoreError("plan store directory '" + directory_ +
                             "' does not exist");
        }
        return;
    }
    fs::create_directories(directory_, ec);
    if (ec) {
        throw StoreError("cannot create plan store directory '" +
                         directory_ + "': " + ec.message());
    }
    // Probe writability now so an unwritable --plan-dir fails with an
    // actionable message up front, not mid-sweep at the first save.
    const std::string probe =
        (fs::path(directory_) / (".probe" + tempSuffix())).string();
    {
        std::ofstream os(probe, std::ios::binary);
        if (!os) {
            throw StoreError("plan store directory '" + directory_ +
                             "' is not writable");
        }
    }
    fs::remove(probe, ec);
}

std::string
PlanStore::fileName(std::uint64_t fingerprint,
                    const TilingParams &tiling)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "plan-%016llx-c%u-n%u-g%u-b%u.gplan",
                  static_cast<unsigned long long>(fingerprint),
                  tiling.crossbarDim, tiling.crossbarsPerGe,
                  tiling.numGe, tiling.blockSize);
    return buf;
}

std::string
PlanStore::path(std::uint64_t fingerprint,
                const TilingParams &tiling) const
{
    return (fs::path(directory_) / fileName(fingerprint, tiling))
        .string();
}

bool
PlanStore::contains(std::uint64_t fingerprint,
                    const TilingParams &tiling) const
{
    std::error_code ec;
    return fs::exists(path(fingerprint, tiling), ec);
}

TilePlanPtr
PlanStore::load(std::uint64_t fingerprint,
                const TilingParams &tiling) const
{
    const std::string file = path(fingerprint, tiling);
    std::error_code ec;
    if (!fs::exists(file, ec)) {
        loadMisses_.fetch_add(1, std::memory_order_relaxed);
        perf::Registry::instance()
            .counter("store.load_misses")
            .add();
        return nullptr;
    }

    const auto reject = [this, &file](const std::string &why) {
        loadRejects_.fetch_add(1, std::memory_order_relaxed);
        perf::Registry::instance()
            .counter("store.load_rejects")
            .add();
        // An artifact existed but could not be used: the caller falls
        // back to a fresh prepare. This is the degradation contract
        // ("corruption degrades, never crashes") made observable.
        perf::Registry::instance()
            .counter("store.degraded_loads")
            .add();
        GRAPHR_WARN("plan store: ignoring ", file, ": ", why,
                    " — preparing afresh");
        return nullptr;
    };

    FileBytes bytes;
    if (!bytes.read(file))
        return reject("unreadable");

    Header h;
    std::string issue;
    if (!decodeHeader(bytes.data(), bytes.size(), h, issue))
        return reject(issue);
    if (h.fingerprint != fingerprint)
        return reject("stale graph fingerprint");
    if (h.tiling.crossbarDim != tiling.crossbarDim ||
        h.tiling.crossbarsPerGe != tiling.crossbarsPerGe ||
        h.tiling.numGe != tiling.numGe ||
        h.tiling.blockSize != tiling.blockSize)
        return reject("tiling mismatch");

    const unsigned char *payload = bytes.data() + kHeaderBytes;
    const std::size_t payload_size = bytes.size() - kHeaderBytes;
    if (fnv1a64(payload, payload_size) != h.payloadChecksum)
        return reject("payload checksum mismatch");

    if (payload_size < 4)
        return reject("payload too small for a codec tag");
    std::uint32_t codec = 0;
    std::memcpy(&codec, payload, 4);
    const unsigned char *body = payload + 4;
    const std::size_t body_size = payload_size - 4;

    TilePlanPtr plan;
    if (codec == kCodecRaw) {
        PayloadParts parts;
        if (!parsePayload(h, body, body_size, parts, issue))
            return reject(issue);
        plan = std::make_shared<const TilePlan>(
            static_cast<VertexId>(h.vertices), h.tiling,
            std::move(parts.edges), std::move(parts.spans),
            std::move(parts.meta), h.totalNnz, h.fingerprint);
    } else if (codec == kCodecDelta) {
        // The delta body carries no metadata table, so every tile's
        // nnz is its edge count and the header totals must agree.
        if (h.totalNnz != h.edges)
            return reject("total nnz disagrees with the edge count");
        try {
            // Safe after decodeHeader's tiling/vertex validation.
            const GridPartition part(
                static_cast<VertexId>(h.vertices), h.tiling);
            EdgeStreamDecoder dec(part, body, body_size);
            if (dec.totalEdges() != h.edges ||
                dec.totalTiles() != h.tiles)
                return reject("stream totals disagree with header");
            plan = std::make_shared<const TilePlan>(
                static_cast<VertexId>(h.vertices), h.tiling, dec,
                h.fingerprint);
        } catch (const CodecError &e) {
            return reject(e.what());
        }
    } else {
        return reject("unknown payload codec tag");
    }

    loadHits_.fetch_add(1, std::memory_order_relaxed);
    perf::Registry::instance().counter("store.load_hits").add();
    return plan;
}

std::string
PlanStore::save(const TilePlan &plan, const TilingParams &tiling) const
{
    ByteWriter payload;
    const char *raw_env = std::getenv("GRAPHR_STORE_RAW");
    const bool force_raw =
        raw_env != nullptr && raw_env[0] != '\0' && raw_env[0] != '0';
    bool wrote_delta = false;
    if (!force_raw) {
        const std::vector<unsigned char> stream = encodeEdgeStream(
            plan.partition, plan.ordered.edges(), plan.ordered.tiles());
        // Respect the decoder's expansion bound: a duplicate-heavy
        // stream the decoder would refuse is written raw instead, so
        // every artifact the store emits is loadable.
        if (plan.ordered.edges().size() <=
            stream.size() * kMaxEdgesPerStreamByte) {
            payload.raw(kCodecDelta);
            payload.append(stream.data(), stream.size());
            wrote_delta = true;
        }
    }
    if (!wrote_delta) {
        payload.raw(kCodecRaw);
        serializePayload(payload, plan);
    }

    Header h;
    h.version = kFormatVersion;
    h.fingerprint = plan.fingerprint;
    h.vertices = plan.partition.numVertices();
    h.tiling = tiling;
    h.edges = plan.ordered.edges().size();
    h.tiles = plan.ordered.tiles().size();
    h.totalNnz = plan.meta.totalNnz();
    h.payloadBytes = payload.bytes().size();
    h.payloadChecksum =
        fnv1a64(payload.bytes().data(), payload.bytes().size());

    ByteWriter header;
    encodeHeader(header, h);
    GRAPHR_ASSERT(header.bytes().size() == kHeaderBytes,
                  "header layout drifted");

    const std::string final_path = path(plan.fingerprint, tiling);
    const std::string tmp_path = final_path + tempSuffix();
#ifdef GRAPHR_STORE_HAVE_MMAP
    {
        const int fd =
            GRAPHR_FAILPOINT("store.write.fail")
                ? -1
                : ::open(tmp_path.c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC, 0666);
        if (fd < 0) {
            throw StoreError("cannot write plan artifact '" +
                             tmp_path + "'");
        }
        std::string why;
        bool ok = writeFull(fd, header.bytes().data(),
                            header.bytes().size(), why) &&
                  writeFull(fd, payload.bytes().data(),
                            payload.bytes().size(), why);
        // Crash durability: the artifact bytes must be on stable
        // storage *before* the rename publishes the name. Without
        // this fsync a crash shortly after save() could leave the
        // final name pointing at torn data — rename orders the
        // metadata, not the file contents.
        if (ok && (GRAPHR_FAILPOINT("store.fsync.fail") ||
                   ::fsync(fd) != 0)) {
            why = "fsync failed";
            ok = false;
        }
        if (::close(fd) != 0 && ok) {
            why = std::strerror(errno);
            ok = false;
        }
        if (!ok) {
            std::error_code ec;
            fs::remove(tmp_path, ec);
            throw StoreError("failed writing plan artifact '" +
                             tmp_path + "': " + why);
        }
    }
#else
    {
        std::ofstream os(tmp_path, std::ios::binary);
        if (!os) {
            throw StoreError("cannot write plan artifact '" +
                             tmp_path + "'");
        }
        os.write(
            reinterpret_cast<const char *>(header.bytes().data()),
            static_cast<std::streamsize>(header.bytes().size()));
        os.write(
            reinterpret_cast<const char *>(payload.bytes().data()),
            static_cast<std::streamsize>(payload.bytes().size()));
        os.close();
        if (!os) {
            std::error_code ec;
            fs::remove(tmp_path, ec);
            throw StoreError("failed writing plan artifact '" +
                             tmp_path + "'");
        }
    }
#endif
    std::error_code ec;
    if (GRAPHR_FAILPOINT("store.rename.fail"))
        ec = std::make_error_code(std::errc::io_error);
    else
        fs::rename(tmp_path, final_path, ec);
    if (ec) {
        const std::string reason = ec.message();
        fs::remove(tmp_path, ec);
        throw StoreError("cannot move plan artifact into place at '" +
                         final_path + "': " + reason);
    }
#ifdef GRAPHR_STORE_HAVE_MMAP
    // Make the publishing rename itself durable. A failure here only
    // weakens durability of an already-valid, already-visible
    // artifact, so it warns instead of throwing.
    const int dirfd =
        ::open(directory_.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd < 0 || ::fsync(dirfd) != 0) {
        GRAPHR_WARN("plan store: cannot fsync directory '",
                    directory_, "': ", std::strerror(errno),
                    " — artifact saved but the rename may not "
                    "survive a crash");
    }
    if (dirfd >= 0)
        ::close(dirfd);
#endif
    saves_.fetch_add(1, std::memory_order_relaxed);
    perf::Registry::instance().counter("store.saves").add();
    return final_path;
}

std::vector<PlanArtifactInfo>
PlanStore::list() const
{
    std::vector<PlanArtifactInfo> out;
    std::error_code ec;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(directory_, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        const fs::path &p = entry.path();
        if (p.extension() != ".gplan")
            continue;

        PlanArtifactInfo info;
        info.file = p.filename().string();
        info.bytes = entry.file_size(ec);

        FileBytes bytes;
        if (!bytes.read(p.string())) {
            info.issue = "unreadable";
            out.push_back(std::move(info));
            continue;
        }
        Header h;
        std::string issue;
        if (decodeHeader(bytes.data(), bytes.size(), h, issue)) {
            info.fingerprint = h.fingerprint;
            info.tiling = h.tiling;
            info.vertices = h.vertices;
            info.edges = h.edges;
            info.tiles = h.tiles;
            info.payloadBytes = h.payloadBytes;
            const unsigned char *payload =
                bytes.data() + kHeaderBytes;
            const std::size_t payload_size =
                bytes.size() - kHeaderBytes;
            if (fnv1a64(payload, payload_size) != h.payloadChecksum) {
                issue = "payload checksum mismatch";
            } else if (payload_size < 4) {
                issue = "payload too small for a codec tag";
            } else {
                std::uint32_t codec = 0;
                std::memcpy(&codec, payload, 4);
                const unsigned char *body = payload + 4;
                const std::size_t body_size = payload_size - 4;
                if (codec == kCodecRaw) {
                    info.codec = "raw";
                    PayloadParts parts;
                    if (parsePayload(h, body, body_size, parts,
                                     issue))
                        info.valid = true;
                } else if (codec == kCodecDelta) {
                    info.codec = "delta";
                    // Full decode-drain: listing promises the same
                    // validation depth a load performs.
                    try {
                        const GridPartition part(
                            static_cast<VertexId>(h.vertices),
                            h.tiling);
                        EdgeStreamDecoder dec(part, body, body_size);
                        std::uint64_t edges = 0;
                        std::uint64_t tiles = 0;
                        TileChunkSource::Chunk chunk;
                        while (dec.next(chunk)) {
                            edges += chunk.edges.size();
                            ++tiles;
                        }
                        if (edges != h.edges || tiles != h.tiles)
                            issue = "stream totals disagree with "
                                    "header";
                        else if (h.totalNnz != h.edges)
                            issue = "total nnz disagrees with the "
                                    "edge count";
                        else
                            info.valid = true;
                    } catch (const CodecError &e) {
                        issue = e.what();
                    }
                } else {
                    issue = "unknown payload codec tag";
                }
            }
        }
        info.version = h.version;
        info.issue = info.valid ? "" : issue;
        out.push_back(std::move(info));
    }
    std::sort(out.begin(), out.end(),
              [](const PlanArtifactInfo &a, const PlanArtifactInfo &b) {
                  return a.file < b.file;
              });
    return out;
}

} // namespace graphr
