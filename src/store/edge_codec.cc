#include "edge_codec.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>

#include "common/failpoint.hh"
#include "common/logging.hh"
#include "perf/counters.hh"

namespace graphr
{

namespace
{

constexpr unsigned kWeightAllOnes = 0;  ///< every weight is 1.0
constexpr unsigned kWeightConstant = 1; ///< one shared bit pattern
constexpr unsigned kWeightRaw = 2;      ///< per-edge f64 bits

/** LEB128 append. */
void
putVarint(std::vector<unsigned char> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<unsigned char>(v) | 0x80u);
        v >>= 7;
    }
    out.push_back(static_cast<unsigned char>(v));
}

std::size_t
varintBytes(std::uint64_t v)
{
    std::size_t n = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++n;
    }
    return n;
}

void
putU64(std::vector<unsigned char> &out, std::uint64_t v)
{
    const std::size_t at = out.size();
    out.resize(at + 8);
    std::memcpy(out.data() + at, &v, 8);
}

/** LSB-first bit packer for the fixed-width low-bits plane. */
class BitWriter
{
  public:
    explicit BitWriter(std::vector<unsigned char> &out) : out_(out) {}

    void
    put(std::uint64_t v, unsigned k)
    {
        // nbits_ stays < 8, so a single shift is safe up to k = 56;
        // wider fields (possible only for degenerate huge tilings)
        // split into two chunks.
        if (k > 56) {
            put(v & ((std::uint64_t{1} << 56) - 1), 56);
            put(v >> 56, k - 56);
            return;
        }
        if (k == 0)
            return;
        acc_ |= (k < 64 ? (v & ((std::uint64_t{1} << k) - 1)) : v)
                << nbits_;
        nbits_ += k;
        while (nbits_ >= 8) {
            out_.push_back(static_cast<unsigned char>(acc_));
            acc_ >>= 8;
            nbits_ -= 8;
        }
    }

    void
    flush()
    {
        if (nbits_ > 0) {
            out_.push_back(static_cast<unsigned char>(acc_));
            acc_ = 0;
            nbits_ = 0;
        }
    }

  private:
    std::vector<unsigned char> &out_;
    std::uint64_t acc_ = 0;
    unsigned nbits_ = 0;
};

/** LSB-first bit reader over a fixed byte range (pre-validated). */
class BitReader
{
  public:
    BitReader(const unsigned char *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint64_t
    get(unsigned k)
    {
        if (k > 56)
            return get(56) | (get(k - 56) << 56);
        while (nbits_ < k) {
            // The plane's byte count was bounds-checked up front, so
            // running dry here cannot happen for in-range reads.
            acc_ |= static_cast<std::uint64_t>(
                        pos_ < size_ ? data_[pos_] : 0u)
                    << nbits_;
            ++pos_;
            nbits_ += 8;
        }
        const std::uint64_t v =
            k == 0 ? 0
                   : acc_ & ((std::uint64_t{1} << k) - 1);
        acc_ >>= k;
        nbits_ -= k;
        return v;
    }

  private:
    const unsigned char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::uint64_t acc_ = 0;
    unsigned nbits_ = 0;
};

/**
 * Pick the low-bits width k minimising the estimated tile size: every
 * delta pays k packed bits, and each delta wider than k pays an
 * exception (its high part as a varint plus ~one run-length byte).
 * The estimate only has to be deterministic and reasonable — the
 * chosen k is written into the tile's flags, so the decoder never
 * re-derives it.
 */
unsigned
chooseLowBits(const std::uint64_t *deltas, std::size_t m)
{
    if (m == 0)
        return 0;
    std::size_t hist[65] = {};
    unsigned max_width = 0;
    for (std::size_t i = 0; i < m; ++i) {
        const unsigned w =
            static_cast<unsigned>(std::bit_width(deltas[i]));
        ++hist[w];
        max_width = std::max(max_width, w);
    }
    unsigned best_k = 0;
    std::uint64_t best_cost = ~std::uint64_t{0};
    for (unsigned k = 0; k <= max_width; ++k) {
        std::uint64_t cost = static_cast<std::uint64_t>(m) * k;
        for (unsigned w = k + 1; w <= max_width; ++w) {
            // High part is w-k bits -> ceil((w-k)/7) varint bytes,
            // plus one run-length byte of bookkeeping.
            cost += static_cast<std::uint64_t>(hist[w]) *
                    (((w - k + 6) / 7 + 1) * 8);
        }
        if (cost < best_cost) {
            best_cost = cost;
            best_k = k;
        }
    }
    return best_k;
}

[[noreturn]] void
malformedInput(const std::string &why)
{
    throw CodecError("edge codec: " + why);
}

} // namespace

std::vector<unsigned char>
encodeEdgeStream(const GridPartition &partition,
                 std::span<const Edge> edges,
                 std::span<const TileSpan> tiles)
{
    static perf::Counter &encoded =
        perf::Registry::instance().counter("store.codec.encoded_edges");

    const std::uint64_t one_bits = std::bit_cast<std::uint64_t>(1.0);
    const std::uint32_t dim = partition.crossbarDim();
    const std::uint64_t width = partition.tileWidth();
    const std::uint64_t capacity = partition.tileCapacity();

    std::vector<unsigned char> out;
    // Dense small deltas dominate, so ~2 bytes/edge is a generous
    // first reservation; the vector grows for exception-heavy tiles.
    out.reserve(16 + 2 * edges.size());
    putVarint(out, tiles.size());
    putVarint(out, edges.size());

    std::vector<std::uint64_t> locals;
    std::vector<std::uint64_t> deltas;
    std::uint64_t prev_tile = 0;
    std::uint64_t covered = 0;
    for (std::size_t t = 0; t < tiles.size(); ++t) {
        const TileSpan &span = tiles[t];
        if (span.numEdges == 0 || span.firstEdge != covered ||
            span.numEdges > edges.size() - covered)
            malformedInput("tile directory is not a contiguous cover");
        if (span.tileIndex >= partition.numTiles() ||
            (t > 0 && span.tileIndex <= prev_tile))
            malformedInput("tile directory out of streaming order");
        covered += span.numEdges;

        std::uint64_t row0 = 0;
        std::uint64_t col0 = 0;
        partition.tileOrigin(partition.tileCoord(span.tileIndex),
                             row0, col0);

        // Local cell IDs (column-major within the tile) and their
        // deltas; also classify the tile's weights in the same pass.
        locals.clear();
        locals.reserve(span.numEdges);
        bool all_ones = true;
        bool constant = true;
        std::uint64_t first_weight = 0;
        for (std::uint64_t e = span.firstEdge;
             e < span.firstEdge + span.numEdges; ++e) {
            const Edge &edge = edges[e];
            const std::uint64_t row = edge.src - row0;
            const std::uint64_t col = edge.dst - col0;
            if (row >= dim || col >= width)
                malformedInput("edge outside its tile window");
            locals.push_back(row + col * dim);
            const std::uint64_t bits = std::bit_cast<std::uint64_t>(
                static_cast<double>(edge.weight));
            if (e == span.firstEdge)
                first_weight = bits;
            all_ones &= bits == one_bits;
            constant &= bits == first_weight;
        }
        deltas.clear();
        deltas.reserve(locals.size());
        for (std::size_t i = 1; i < locals.size(); ++i) {
            if (locals[i] < locals[i - 1])
                malformedInput("tile edges out of streaming order");
            deltas.push_back(locals[i] - locals[i - 1]);
        }
        GRAPHR_ASSERT(locals.front() < capacity &&
                          locals.back() < capacity,
                      "local cell id exceeds tile capacity");

        const unsigned mode = all_ones    ? kWeightAllOnes
                              : constant  ? kWeightConstant
                                          : kWeightRaw;
        const unsigned k = chooseLowBits(deltas.data(), deltas.size());

        putVarint(out, t == 0 ? span.tileIndex
                              : span.tileIndex - prev_tile);
        prev_tile = span.tileIndex;
        putVarint(out, span.numEdges);
        out.push_back(static_cast<unsigned char>(mode | (k << 2)));
        putVarint(out, locals.front());
        if (mode == kWeightConstant)
            putU64(out, first_weight);

        BitWriter plane(out);
        for (const std::uint64_t d : deltas)
            plane.put(d, k);
        plane.flush();

        // Zero-run/varint exception stream over the high parts.
        std::size_t i = 0;
        while (i < deltas.size()) {
            std::size_t run = 0;
            while (i + run < deltas.size() &&
                   (deltas[i + run] >> k) == 0)
                ++run;
            putVarint(out, run);
            i += run;
            if (i < deltas.size()) {
                putVarint(out, deltas[i] >> k);
                ++i;
            }
        }

        if (mode == kWeightRaw) {
            for (std::uint64_t e = span.firstEdge;
                 e < span.firstEdge + span.numEdges; ++e) {
                putU64(out, std::bit_cast<std::uint64_t>(
                                static_cast<double>(
                                    edges[e].weight)));
            }
        }
    }
    if (covered != edges.size())
        malformedInput("tile directory does not cover the edge list");
    encoded.add(edges.size());
    return out;
}

EdgeStreamDecoder::EdgeStreamDecoder(const GridPartition &partition,
                                     const unsigned char *data,
                                     std::size_t size)
    : partition_(partition), data_(data), size_(size)
{
    tileCount_ = readVarint("tile count");
    edgeCount_ = readVarint("edge count");
    if (tileCount_ > edgeCount_)
        malformedInput("more tiles than edges declared");
    if (tileCount_ == 0 && edgeCount_ != 0)
        malformedInput("edges declared but no tiles");
    // Allocation safety: bound the declared totals by what the byte
    // count could plausibly encode before reserving anything.
    if (edgeCount_ > size_ * kMaxEdgesPerStreamByte)
        malformedInput("declared edge count implausible for stream "
                       "size");
    if (tileCount_ > size_ / 4)
        malformedInput("declared tile count implausible for stream "
                       "size");
}

std::uint64_t
EdgeStreamDecoder::readVarint(const char *what)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
        if (pos_ >= size_)
            malformedInput(std::string("truncated varint (") + what +
                           ")");
        const unsigned char byte = data_[pos_++];
        if (shift == 63 && byte > 1)
            malformedInput(std::string("varint overflows 64 bits (") +
                           what + ")");
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return v;
        shift += 7;
        if (shift > 63)
            malformedInput(std::string("varint overflows 64 bits (") +
                           what + ")");
    }
}

bool
EdgeStreamDecoder::next(Chunk &chunk)
{
    if (GRAPHR_FAILPOINT("store.decode.fail"))
        malformedInput("injected decode fault (store.decode.fail)");

    if (tilesDecoded_ == tileCount_) {
        if (edgesDecoded_ != edgeCount_)
            malformedInput("stream ended short of its declared edge "
                           "count");
        if (pos_ != size_)
            malformedInput("trailing bytes after the final tile");
        return false;
    }

    const std::uint64_t gap = readVarint("tile index");
    std::uint64_t tile_index;
    if (tilesDecoded_ == 0) {
        tile_index = gap;
    } else {
        if (gap == 0)
            malformedInput("tile directory out of streaming order");
        if (gap > ~std::uint64_t{0} - prevTileIndex_)
            malformedInput("tile index overflows");
        tile_index = prevTileIndex_ + gap;
    }
    if (tile_index >= partition_.numTiles())
        malformedInput("tile index outside the grid");

    const std::uint64_t n = readVarint("tile edge count");
    if (n == 0)
        malformedInput("empty tile record");
    if (n > edgeCount_ - edgesDecoded_)
        malformedInput("tile edge counts exceed the declared total");

    if (pos_ >= size_)
        malformedInput("truncated tile flags");
    const unsigned char flags = data_[pos_++];
    const unsigned mode = flags & 0x3u;
    const unsigned k = flags >> 2;
    if (mode > kWeightRaw)
        malformedInput("unknown weight mode");

    const std::uint64_t capacity = partition_.tileCapacity();
    std::uint64_t local = readVarint("first local id");
    if (local >= capacity)
        malformedInput("local cell id exceeds tile capacity");

    std::uint64_t weight_bits = std::bit_cast<std::uint64_t>(1.0);
    if (mode == kWeightConstant) {
        if (size_ - pos_ < 8)
            malformedInput("truncated constant weight");
        std::memcpy(&weight_bits, data_ + pos_, 8);
        pos_ += 8;
    }

    const std::uint64_t m = n - 1;
    const std::size_t plane_bytes =
        static_cast<std::size_t>((m * k + 7) / 8);
    if (size_ - pos_ < plane_bytes)
        malformedInput("truncated low-bits plane");
    BitReader plane(data_ + pos_, plane_bytes);
    pos_ += plane_bytes;

    // High parts, zero-run/varint coded. Decoded into a scratch list
    // first because the raw weights (mode 2) follow this stream and
    // cannot be located until it has been fully parsed.
    highs_.assign(m, 0);
    std::uint64_t i = 0;
    while (i < m) {
        const std::uint64_t run = readVarint("zero-run length");
        if (run > m - i)
            malformedInput("zero run exceeds the tile's deltas");
        i += run;
        if (i < m) {
            const std::uint64_t high = readVarint("delta high part");
            if (high == 0)
                malformedInput("non-canonical zero exception");
            highs_[i] = high;
            ++i;
        }
    }

    std::uint64_t row0 = 0;
    std::uint64_t col0 = 0;
    partition_.tileOrigin(partition_.tileCoord(tile_index), row0,
                          col0);
    const std::uint32_t dim = partition_.crossbarDim();
    const std::uint64_t vertices = partition_.numVertices();
    const double weight = std::bit_cast<double>(weight_bits);

    scratch_.resize(n);
    const std::uint64_t max_delta = capacity - 1;
    for (std::uint64_t e = 0; e < n; ++e) {
        if (e > 0) {
            const std::uint64_t high = highs_[e - 1];
            if (k >= 64 ? high != 0 : high > (max_delta >> k))
                malformedInput("delta exceeds tile capacity");
            const std::uint64_t delta =
                (high << k) | plane.get(k);
            if (delta > max_delta - local)
                malformedInput("local cell id exceeds tile capacity");
            local += delta;
        }
        const std::uint64_t src = row0 + local % dim;
        const std::uint64_t dst = col0 + local / dim;
        if (src >= vertices || dst >= vertices)
            malformedInput("edge endpoint outside the vertex range");
        scratch_[e].src = static_cast<VertexId>(src);
        scratch_[e].dst = static_cast<VertexId>(dst);
        scratch_[e].weight = weight;
    }
    if (mode == kWeightRaw) {
        if ((size_ - pos_) / 8 < n)
            malformedInput("truncated raw weights");
        for (std::uint64_t e = 0; e < n; ++e) {
            std::uint64_t bits = 0;
            std::memcpy(&bits, data_ + pos_, 8);
            pos_ += 8;
            scratch_[e].weight = std::bit_cast<double>(bits);
        }
    }

    static perf::Counter &decoded_edges =
        perf::Registry::instance().counter("store.codec.decoded_edges");
    static perf::Counter &decoded_tiles =
        perf::Registry::instance().counter("store.codec.decoded_tiles");
    decoded_edges.add(n);
    decoded_tiles.add();

    prevTileIndex_ = tile_index;
    ++tilesDecoded_;
    edgesDecoded_ += n;
    chunk.tileIndex = tile_index;
    chunk.edges = std::span<const Edge>(scratch_.data(), n);
    return true;
}

} // namespace graphr
