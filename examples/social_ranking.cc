/**
 * @file
 * Social-network influencer ranking (the paper's PageRank
 * motivation): run PageRank over a WikiVote-scale social graph on
 * the paper-configuration GraphR node (timing model) and compare
 * simulated time/energy against the CPU baseline.
 */

#include <algorithm>
#include <iostream>

#include "algorithms/pagerank.hh"
#include "baselines/cpu_model.hh"
#include "common/table.hh"
#include "graph/datasets.hh"
#include "graphr/node.hh"

int
main()
{
    using namespace graphr;

    // WikiVote-sized synthetic social graph (Table 3 stand-in).
    const CooGraph graph = makeDataset(DatasetId::kWikiVote, 1.0);
    std::cout << "WikiVote stand-in: |V| = " << graph.numVertices()
              << ", |E| = " << graph.numEdges() << "\n\n";

    PageRankParams params;
    params.maxIterations = 20;
    params.tolerance = 0.0;

    // GraphR, paper configuration (C=8, N=32, G=64), timing model.
    GraphRNode node;
    std::vector<Value> ranks;
    const SimReport graphr_rep = node.runPageRank(graph, params, &ranks);

    // CPU baseline (GridGraph on 2x Xeon E5-2630 v3).
    CpuModel cpu;
    const BaselineReport cpu_rep =
        cpu.runPageRank(graph, params.maxIterations);

    TextTable table;
    table.header({"platform", "time (s)", "energy (J)", "speedup",
                  "energy saving"});
    table.row({"CPU (GridGraph)", TextTable::sci(cpu_rep.seconds),
               TextTable::sci(cpu_rep.joules), "1.00", "1.00"});
    table.row({"GraphR", TextTable::sci(graphr_rep.seconds),
               TextTable::sci(graphr_rep.joules),
               TextTable::num(cpu_rep.seconds / graphr_rep.seconds),
               TextTable::num(cpu_rep.joules / graphr_rep.joules)});
    table.print(std::cout);

    std::cout << "\ntop 10 influencers:\n";
    std::vector<VertexId> order(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        order[v] = v;
    std::sort(order.begin(), order.end(),
              [&ranks](VertexId a, VertexId b) {
                  return ranks[a] > ranks[b];
              });
    const auto in_deg = graph.inDegrees();
    for (int i = 0; i < 10; ++i) {
        std::cout << "  vertex " << order[i] << "  rank "
                  << ranks[order[i]] << "  in-degree "
                  << in_deg[order[i]] << "\n";
    }
    return 0;
}
