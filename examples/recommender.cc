/**
 * @file
 * Movie recommender by collaborative filtering (the paper's Netflix
 * workload, section 5.1): train a matrix-factorisation model on a
 * synthetic rating graph, report training RMSE, and show the GraphR
 * schedule/cost for the same workload next to CPU and GPU baselines.
 */

#include <algorithm>
#include <iostream>

#include "algorithms/collaborative_filtering.hh"
#include "baselines/cpu_model.hh"
#include "baselines/gpu_model.hh"
#include "common/table.hh"
#include "graph/generator.hh"
#include "graphr/node.hh"

int
main()
{
    using namespace graphr;

    const VertexId users = 2000;
    const VertexId movies = 400;
    const CooGraph ratings =
        makeBipartiteRatings(users, movies, 40000, /*seed=*/13);
    std::cout << "ratings: " << users << " users x " << movies
              << " movies, " << ratings.numEdges() << " ratings\n\n";

    CfParams params;
    params.numUsers = users;
    params.featureLength = 32; // paper's feature length
    params.epochs = 6;

    // Golden training (semantics).
    const CfResult model = collaborativeFiltering(ratings, params);
    std::cout << "training RMSE per epoch:";
    for (double r : model.rmsePerEpoch)
        std::cout << " " << TextTable::num(r, 3);
    std::cout << "\n\n";

    // GraphR cost for the same schedule (paper configuration).
    GraphRNode node;
    const SimReport graphr_rep = node.runCf(ratings, params);

    CpuModel cpu;
    GpuModel gpu;
    const BaselineReport cpu_rep = cpu.runCf(ratings, params);
    const BaselineReport gpu_rep = gpu.runCf(ratings, params);

    TextTable table;
    table.header({"platform", "time (s)", "energy (J)"});
    table.row({"CPU (GraphChi-like)", TextTable::sci(cpu_rep.seconds),
               TextTable::sci(cpu_rep.joules)});
    table.row({"GPU (CuMF-like)", TextTable::sci(gpu_rep.seconds),
               TextTable::sci(gpu_rep.joules)});
    table.row({"GraphR", TextTable::sci(graphr_rep.seconds),
               TextTable::sci(graphr_rep.joules)});
    table.print(std::cout);

    // Recommend 3 unseen movies for user 0 by predicted rating.
    const int k = params.featureLength;
    std::vector<bool> seen(movies, false);
    for (const Edge &e : ratings.edges()) {
        if (e.src == 0)
            seen[e.dst - users] = true;
    }
    std::vector<std::pair<double, VertexId>> predictions;
    for (VertexId m = 0; m < movies; ++m) {
        if (seen[m])
            continue;
        double score = 0.0;
        for (int f = 0; f < k; ++f) {
            score += model.userFactors[static_cast<std::size_t>(0) * k +
                                       f] *
                     model.itemFactors[static_cast<std::size_t>(m) * k +
                                       f];
        }
        predictions.emplace_back(score, m);
    }
    std::sort(predictions.rbegin(), predictions.rend());
    std::cout << "\nrecommendations for user 0:\n";
    for (int i = 0; i < 3 && i < static_cast<int>(predictions.size());
         ++i) {
        std::cout << "  movie " << predictions[i].second
                  << "  predicted rating "
                  << TextTable::num(predictions[i].first, 2) << "\n";
    }
    return 0;
}
