/**
 * @file
 * Road-network navigation with SSSP (the paper's parallel add-op
 * pattern, Fig. 14/16): shortest paths over a weighted 2-D grid
 * through the functional GraphR datapath, with path extraction.
 */

#include <iostream>
#include <vector>

#include "algorithms/traversal.hh"
#include "graph/generator.hh"
#include "graphr/node.hh"

int
main()
{
    using namespace graphr;

    // A 24x24 "city" grid: intersections are vertices, street
    // segments weighted 1..9 (travel minutes).
    const VertexId width = 24;
    const VertexId height = 24;
    const CooGraph roads = makeGrid2d(width, height, /*seed=*/11,
                                      /*max_weight=*/9.0);
    std::cout << "road grid: " << width << "x" << height << ", |E| = "
              << roads.numEdges() << "\n";

    GraphRConfig config;
    config.tiling.crossbarDim = 8;
    config.tiling.crossbarsPerGe = 4;
    config.tiling.numGe = 4;
    config.functional = true; // exact integer relaxation in crossbars

    GraphRNode node(config);
    const VertexId source = 0; // top-left corner
    std::vector<Value> dist;
    const SimReport report = node.runSssp(roads, source, &dist);
    report.print(std::cout);

    const VertexId target = width * height - 1; // bottom-right
    std::cout << "\nshortest travel time corner-to-corner: "
              << dist[target] << " minutes\n";

    // Extract one shortest path greedily (follow any predecessor u
    // with dist[u] + w(u, v) == dist[v]).
    std::vector<VertexId> path;
    VertexId cur = target;
    path.push_back(cur);
    const CsrGraph in(roads, CsrGraph::Direction::kIn);
    while (cur != source) {
        VertexId next = kInvalidVertex;
        for (const Adjacency &adj : in.neighbors(cur)) {
            if (dist[adj.neighbor] + adj.weight == dist[cur]) {
                next = adj.neighbor;
                break;
            }
        }
        if (next == kInvalidVertex) {
            std::cerr << "path extraction failed\n";
            return 1;
        }
        cur = next;
        path.push_back(cur);
    }

    std::cout << "path hops: " << path.size() - 1 << " (";
    for (std::size_t i = path.size(); i-- > 0;) {
        std::cout << path[i];
        if (i != 0)
            std::cout << " -> ";
    }
    std::cout << ")\n";

    // Cross-check against the golden CPU implementation.
    const TraversalResult golden = sssp(roads, source);
    std::cout << "golden agrees: "
              << (golden.dist[target] == dist[target] ? "yes" : "NO")
              << "\n";
    return 0;
}
