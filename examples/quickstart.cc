/**
 * @file
 * Quickstart: run PageRank on a small graph through the GraphR
 * functional simulator and print the simulated time/energy report.
 *
 * Demonstrates the minimal public API surface:
 *   CooGraph -> GraphRConfig -> GraphRNode -> SimReport.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "algorithms/pagerank.hh"
#include "graph/generator.hh"
#include "graphr/node.hh"

int
main()
{
    using namespace graphr;

    // 1. Build a graph (here: a small scale-free R-MAT instance; any
    //    edge list loaded into CooGraph works the same way).
    const CooGraph graph = makeRmat({.numVertices = 256,
                                     .numEdges = 2048,
                                     .maxWeight = 1.0,
                                     .seed = 7});
    std::cout << "graph: |V| = " << graph.numVertices()
              << ", |E| = " << graph.numEdges()
              << ", density = " << graph.density() << "\n\n";

    // 2. Configure a GraphR node. We shrink the GE array so the
    //    functional (bit-exact analog datapath) mode stays fast; the
    //    default-constructed config is the paper's C=8, N=32, G=64.
    GraphRConfig config;
    config.tiling.crossbarDim = 8;
    config.tiling.crossbarsPerGe = 4;
    config.tiling.numGe = 4;
    config.functional = true;

    // 3. Run PageRank on the accelerator.
    GraphRNode node(config);
    PageRankParams params;
    params.maxIterations = 20;
    std::vector<Value> ranks;
    const SimReport report = node.runPageRank(graph, params, &ranks);

    report.print(std::cout);

    // 4. Inspect the result: top 5 vertices by rank.
    std::vector<VertexId> order(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        order[v] = v;
    std::sort(order.begin(), order.end(),
              [&ranks](VertexId a, VertexId b) {
                  return ranks[a] > ranks[b];
              });
    std::cout << "\ntop 5 vertices by PageRank:\n";
    for (int i = 0; i < 5; ++i) {
        std::cout << "  #" << i + 1 << "  vertex " << order[i]
                  << "  rank " << ranks[order[i]] << "\n";
    }

    // 5. Sanity: golden CPU PageRank agrees on the winner.
    const PageRankResult golden = pagerank(graph, params);
    std::cout << "\ngolden check: top vertex "
              << (std::max_element(golden.ranks.begin(),
                                   golden.ranks.end()) -
                  golden.ranks.begin())
              << "\n";
    return 0;
}
