/**
 * @file
 * Quickstart: run PageRank through the unified workload driver and
 * print the simulated time/energy report.
 *
 * Demonstrates the driver surface every tool in this repo shares:
 *   spec strings -> runOne()/runSweep() -> RunResult (text or JSON).
 * The same combination is expressible from the CLI as
 *   graphr_run --algo pagerank --backend graphr \
 *              --dataset rmat:vertices=256,edges=2048,seed=7
 */

#include <iostream>

#include "driver/driver.hh"
#include "driver/run_result.hh"

int
main()
{
    using namespace graphr::driver;

    // 1. Name the combination: any registered workload and backend,
    //    any dataset spec (Table-3 name, generator spec, or file).
    RunSpec spec;
    spec.workload = "pagerank";
    spec.backend = "graphr";
    spec.dataset = "rmat:vertices=256,edges=2048,seed=7";
    spec.params = ParamMap::parse("damping=0.8,iterations=20");

    // 2. Use the bit-exact analog datapath with a small GE array (the
    //    default-constructed config is the paper's C=8, N=32, G=64
    //    timing model).
    spec.backendOptions.config.tiling.crossbarDim = 8;
    spec.backendOptions.config.tiling.crossbarsPerGe = 4;
    spec.backendOptions.config.tiling.numGe = 4;
    spec.backendOptions.config.functional = true;

    // 3. Run it.
    const RunResult result = runOne(spec);
    printResultsTable(std::cout, {result});

    std::cout << "\nbreakdown:\n";
    for (const auto &[name, value] : result.extra)
        std::cout << "  " << name << " = " << value << "\n";

    // 4. The same driver sweeps cross products: compare this graph
    //    across the GraphR node and the CPU/GPU/PIM baselines.
    SweepSpec sweep;
    sweep.workloads = {"pagerank"};
    sweep.backends = {"graphr", "cpu", "gpu", "pim"};
    sweep.datasets = {spec.dataset};
    // Same node configuration, so the graphr column matches part 3.
    sweep.backendOptions = spec.backendOptions;
    const std::vector<RunResult> results = runSweep(sweep);

    std::cout << "\npagerank across backends:\n";
    printMatrix(std::cout, results);
    return 0;
}
