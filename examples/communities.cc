/**
 * @file
 * Community/component analysis with WCC (a third parallel-add-op
 * vertex program beyond the paper's BFS/SSSP): find the weakly
 * connected components of a fragmented network on GraphR, verify
 * against union-find, and report the component size distribution.
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "algorithms/wcc.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "graph/generator.hh"
#include "graphr/node.hh"

int
main()
{
    using namespace graphr;

    // A fragmented network: several R-MAT "communities" of different
    // sizes placed in disjoint vertex ranges.
    const VertexId sizes[] = {600, 300, 150, 80, 40};
    VertexId total = 0;
    for (VertexId s : sizes)
        total += s;
    CooGraph network(total + 30, {}); // +30 isolated vertices
    VertexId base = 0;
    std::uint64_t seed = 17;
    for (VertexId s : sizes) {
        const CooGraph part = makeRmat({.numVertices = s,
                                        .numEdges = static_cast<EdgeId>(
                                            s * 6),
                                        .seed = seed++});
        // Densify connectivity inside each fragment so it is one
        // weak component.
        for (VertexId v = 0; v + 1 < s; ++v)
            network.addEdge(base + v, base + v + 1);
        for (const Edge &e : part.edges())
            network.addEdge(base + e.src, base + e.dst);
        base += s;
    }
    std::cout << "network: " << network.numVertices() << " vertices, "
              << network.numEdges() << " edges\n\n";

    GraphRNode node; // paper configuration, timing model
    std::vector<VertexId> labels;
    const SimReport rep = node.runWcc(network, &labels);
    rep.print(std::cout);

    // Component size histogram.
    std::map<VertexId, std::uint64_t> sizes_by_label;
    for (VertexId v = 0; v < network.numVertices(); ++v)
        ++sizes_by_label[labels[v]];
    std::vector<std::pair<std::uint64_t, VertexId>> ranked;
    for (const auto &[label, size] : sizes_by_label)
        ranked.emplace_back(size, label);
    std::sort(ranked.rbegin(), ranked.rend());

    std::cout << "\ncomponents found: " << ranked.size() << "\n";
    TextTable table;
    table.header({"rank", "representative", "size"});
    for (std::size_t i = 0; i < std::min<std::size_t>(6, ranked.size());
         ++i) {
        table.row({std::to_string(i + 1),
                   std::to_string(ranked[i].second),
                   std::to_string(ranked[i].first)});
    }
    table.print(std::cout);

    // Independent validation.
    const WccResult golden = wccUnionFind(network);
    std::cout << "\nunion-find agrees: "
              << (golden.numComponents == ranked.size() ? "yes" : "NO")
              << " (" << golden.numComponents << " components)\n";
    return 0;
}
