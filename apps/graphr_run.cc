/**
 * @file
 * graphr_run: the unified workload-driver CLI.
 *
 * Runs any algorithm x backend x dataset combination from the driver
 * registries and reports time/energy/work in text and JSON:
 *
 *   graphr_run --algo pagerank --backend graphr --dataset wiki-vote \
 *              --scale 4 --out report.json
 *   graphr_run --algo all --backend all \
 *              --dataset rmat:vertices=4096,edges=32768 --matrix
 *
 * The `prepare` subcommand runs the paper's offline preprocessing
 * ahead of time and persists the artifacts; `store stats` lists them:
 *
 *   graphr_run prepare --dataset wiki-vote --scale 4 --plan-dir plans/
 *   graphr_run store stats --plan-dir plans/
 */

#include <fstream>
#include <iostream>

#include "common/table.hh"
#include "driver/cli.hh"
#include "driver/run_result.hh"
#include "graphr/config.hh"

int
main(int argc, char **argv)
{
    using namespace graphr::driver;

    try {
        const CliOptions opts =
            parseCli(std::vector<std::string>(argv + 1, argv + argc));

        if (opts.help) {
            std::cout << usageText();
            return 0;
        }
        if (opts.list) {
            std::cout << listText();
            return 0;
        }

        if (opts.command == CliCommand::kPrepare) {
            const std::vector<PrepareResult> prepared =
                runPrepare(opts.prepare, &std::cerr);
            graphr::TextTable table;
            table.header({"dataset", "variant", "edges", "tiles",
                          "artifact", "status"});
            for (const PrepareResult &p : prepared) {
                table.row({p.dataset, p.variant,
                           std::to_string(p.edges),
                           std::to_string(p.tiles), p.file,
                           p.reused ? "reused" : "written"});
            }
            table.print(std::cout);
            return 0;
        }
        if (opts.command == CliCommand::kStoreStats) {
            std::cout << storeStatsText(opts.prepare.store);
            return 0;
        }

        const std::vector<RunResult> results =
            runSweep(opts.sweep, &std::cerr);

        // With JSON going to stdout, keep stdout machine-readable and
        // move the human-readable tables to stderr.
        std::ostream &text =
            opts.outPath == "-" ? std::cerr : std::cout;
        text << "\n";
        printResultsTable(text, results);
        if (opts.matrix) {
            text << "\n";
            printMatrix(text, results);
        }

        if (!opts.outPath.empty()) {
            if (opts.outPath == "-") {
                writeResultsJson(std::cout, results);
            } else {
                std::ofstream out(opts.outPath);
                if (out)
                    writeResultsJson(out, results);
                out.close();
                if (!out) {
                    std::cerr << "error: cannot write '"
                              << opts.outPath << "'\n";
                    return 1;
                }
                std::cerr << "wrote " << opts.outPath << "\n";
            }
        }
        return 0;
    } catch (const DriverError &err) {
        std::cerr << "error: " << err.what() << "\n\n"
                  << "run 'graphr_run --help' for usage\n";
        return 1;
    } catch (const graphr::ConfigError &err) {
        // Backend construction validates GraphRConfig (config.hh).
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    } catch (const graphr::StoreError &err) {
        // Plan-store I/O failure during prepare (artifact writes).
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }
}
