/**
 * @file
 * graphr_run: the unified workload-driver CLI.
 *
 * Runs any algorithm x backend x dataset combination from the driver
 * registries and reports time/energy/work in text and JSON:
 *
 *   graphr_run --algo pagerank --backend graphr --dataset wiki-vote \
 *              --scale 4 --out report.json
 *   graphr_run --algo all --backend all \
 *              --dataset rmat:vertices=4096,edges=32768 --matrix
 *
 * The `prepare` subcommand runs the paper's offline preprocessing
 * ahead of time and persists the artifacts; `store stats` lists them:
 *
 *   graphr_run prepare --dataset wiki-vote --scale 4 --plan-dir plans/
 *   graphr_run store stats --plan-dir plans/
 *
 * The `bench` subcommand runs the perf suites (src/perf/) and emits a
 * BENCH_*.json trajectory point; `bench compare` is the regression
 * gate CI runs against the checked-in baseline:
 *
 *   graphr_run bench --suite small --out BENCH_1.json
 *   graphr_run bench compare BENCH_0.json BENCH_1.json --threshold 10
 */

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/table.hh"
#include "driver/cli.hh"
#include "driver/run_result.hh"
#include "graphr/config.hh"
#include "perf/compare.hh"
#include "perf/counters.hh"
#include "perf/suite.hh"

namespace
{

/**
 * With GRAPHR_PERF_DUMP set (non-empty, not "0"), print every
 * process-wide perf counter to stderr on exit, one
 * "perf-counter <name>=<value>" line each. Scripts (CI's warm-store
 * smoke) grep these to assert work invariants like zero sorts on a
 * warm load without parsing the JSON report.
 */
class PerfDumpGuard
{
  public:
    ~PerfDumpGuard()
    {
        const char *env = std::getenv("GRAPHR_PERF_DUMP");
        if (env == nullptr || env[0] == '\0' || env[0] == '0')
            return;
        for (const auto &[name, value] :
             graphr::perf::Registry::instance().counterValues()) {
            std::cerr << "perf-counter " << name << "=" << value
                      << "\n";
        }
    }
};

/** Run a suite, print the table, optionally write BENCH json. */
int
runBench(const graphr::driver::CliOptions &opts)
{
    using namespace graphr::perf;

    SuiteOptions suite_opts;
    suite_opts.reps = opts.benchReps;
    suite_opts.warmups = opts.benchWarmups;
    suite_opts.progress = &std::cerr;
    const BenchReport report = runSuite(opts.benchSuite, suite_opts);

    // Like run/sweep: with JSON going to stdout, the human-readable
    // table moves to stderr so stdout stays machine-readable.
    std::ostream &text = opts.outPath == "-" ? std::cerr : std::cout;
    text << "\n";
    printBenchTable(text, report);

    if (!opts.outPath.empty()) {
        if (opts.outPath == "-") {
            writeBenchJson(std::cout, report);
        } else {
            std::ofstream out(opts.outPath);
            if (out)
                writeBenchJson(out, report);
            out.close();
            if (!out) {
                std::cerr << "error: cannot write '" << opts.outPath
                          << "'\n";
                return 1;
            }
            std::cerr << "wrote " << opts.outPath << "\n";
        }
    }
    return 0;
}

/** Diff two BENCH files; non-zero exit when the gate fails. */
int
runBenchCompare(const graphr::driver::CliOptions &opts)
{
    using namespace graphr::perf;

    CompareOptions compare_opts;
    compare_opts.thresholdPct = opts.compareThresholdPct;
    compare_opts.gateAll = opts.compareGateAll;
    const BenchReport baseline = loadBenchFile(opts.compareOldPath);
    const BenchReport candidate = loadBenchFile(opts.compareNewPath);
    const CompareReport report =
        compareBench(baseline, candidate, compare_opts);
    printCompareReport(std::cout, report, compare_opts);
    return report.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace graphr::driver;

    const PerfDumpGuard perf_dump;
    try {
        const CliOptions opts =
            parseCli(std::vector<std::string>(argv + 1, argv + argc));

        if (opts.help) {
            std::cout << usageText();
            return 0;
        }
        if (opts.list) {
            std::cout << listText();
            return 0;
        }

        if (opts.command == CliCommand::kPrepare) {
            const std::vector<PrepareResult> prepared =
                runPrepare(opts.prepare, &std::cerr);
            graphr::TextTable table;
            table.header({"dataset", "variant", "edges", "tiles",
                          "artifact", "status"});
            for (const PrepareResult &p : prepared) {
                table.row({p.dataset, p.variant,
                           std::to_string(p.edges),
                           std::to_string(p.tiles), p.file,
                           p.reused ? "reused" : "written"});
            }
            table.print(std::cout);
            return 0;
        }
        if (opts.command == CliCommand::kStoreStats) {
            std::cout << storeStatsText(opts.prepare.store);
            return 0;
        }
        if (opts.command == CliCommand::kBench)
            return runBench(opts);
        if (opts.command == CliCommand::kBenchCompare)
            return runBenchCompare(opts);

        const std::vector<RunResult> results =
            runSweep(opts.sweep, &std::cerr);

        // With JSON going to stdout, keep stdout machine-readable and
        // move the human-readable tables to stderr.
        std::ostream &text =
            opts.outPath == "-" ? std::cerr : std::cout;
        text << "\n";
        printResultsTable(text, results);
        if (opts.matrix) {
            text << "\n";
            printMatrix(text, results);
        }

        if (!opts.outPath.empty()) {
            if (opts.outPath == "-") {
                writeResultsJson(std::cout, results);
            } else {
                std::ofstream out(opts.outPath);
                if (out)
                    writeResultsJson(out, results);
                out.close();
                if (!out) {
                    std::cerr << "error: cannot write '"
                              << opts.outPath << "'\n";
                    return 1;
                }
                std::cerr << "wrote " << opts.outPath << "\n";
            }
        }
        return 0;
    } catch (const DriverError &err) {
        std::cerr << "error: " << err.what() << "\n\n"
                  << "run 'graphr_run --help' for usage\n";
        return 1;
    } catch (const graphr::ConfigError &err) {
        // Backend construction validates GraphRConfig (config.hh).
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    } catch (const graphr::StoreError &err) {
        // Plan-store I/O failure during prepare (artifact writes).
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    } catch (const graphr::perf::PerfError &err) {
        // Bench subcommands: unknown suite, unreadable or malformed
        // BENCH file, failed suite invariant.
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }
}
