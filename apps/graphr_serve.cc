/**
 * @file
 * graphr_serve: the long-lived batch-serving daemon.
 *
 * Where graphr_run pays process start-up, dataset resolution and plan
 * preparation per invocation, graphr_serve keeps that state resident
 * and answers a stream of JSONL requests against it — the online half
 * of GraphR's offline/online split, amortised across requests:
 *
 *   printf '%s\n' \
 *     '{"id":"r1","type":"run","dataset":"wiki-vote","scale":4}' \
 *     '{"id":"q1","type":"status"}' | graphr_serve --stdin
 *
 *   graphr_serve --port 7447 --jobs 4 --plan-dir plans/
 *
 * One response line per request, ids echoed, per-connection admission
 * order. TCP mode serves up to --max-connections loopback clients
 * simultaneously over one shared warm state (src/net/event_loop.hh):
 * requests interleave round-robin across connections, each connection
 * gets its own --conn-queue-depth admission quota, and every stream's
 * responses come back in that stream's admission order.
 * SIGTERM/SIGINT and EOF both drain gracefully: the listener closes
 * at signal receipt (stop accepting), in-flight requests finish,
 * every pending response is flushed, then the process exits.
 * See docs/CLI.md for the full request grammar.
 */

#include <atomic>
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/failpoint.hh"
#include "driver/params.hh"
#include "net/event_loop.hh"
#include "net/listener.hh"
#include "service/fd_stream.hh"
#include "service/server.hh"

namespace
{

using namespace graphr;

std::atomic<service::Server *> g_server{nullptr};

/** SIGTERM/SIGINT: ask the server to drain (lock-free store only). */
void
onSignal(int)
{
    if (service::Server *server = g_server.load())
        server->requestStop();
}

/** No SA_RESTART: a signal must interrupt blocked read()/accept(). */
void
installSignalHandlers()
{
    struct sigaction action = {};
    action.sa_handler = onSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
    // A TCP client that disconnects before reading its responses must
    // surface as a write error (EPIPE -> clean session end), not kill
    // the daemon and its warm caches with the default SIGPIPE action.
    ::signal(SIGPIPE, SIG_IGN);
}

/** Detaches the signal handlers' server pointer before the Server is
 *  destroyed (including during exception unwinding), so a late
 *  signal cannot touch a dead object. */
struct ServerRegistration
{
    explicit ServerRegistration(service::Server &server)
    {
        g_server.store(&server);
    }
    ~ServerRegistration() { g_server.store(nullptr); }
};

struct ServeCliOptions
{
    service::ServeOptions server;
    /** TCP port to listen on (loopback); negative = stdin mode. */
    int port = -1;
    /** Simultaneous TCP connections the event loop serves. */
    std::uint32_t maxConnections = 64;
    /** Whether --conn-queue-depth was given (TCP mode otherwise
     *  defaults the per-connection quota to 32). */
    bool connDepthSet = false;
    bool help = false;
    bool listFailpoints = false;
};

std::string
usageText()
{
    return "graphr_serve — long-lived GraphR batch-serving daemon\n"
           "\n"
           "usage: graphr_serve [--stdin | --port N] [flags]\n"
           "\n"
           "flags:\n"
           "  --stdin             serve JSONL requests from stdin,\n"
           "                      responses to stdout (the default)\n"
           "  --port n            listen on 127.0.0.1:n instead,\n"
           "                      serving many connections at once\n"
           "                      (0 = pick a free port, printed to\n"
           "                      stderr)\n"
           "  --jobs n            worker threads executing requests\n"
           "                      (default 1; 0 = hardware threads)\n"
           "  --queue-depth n     max outstanding requests across all\n"
           "                      connections before admission\n"
           "                      rejects (default 256)\n"
           "  --conn-queue-depth n\n"
           "                      max outstanding requests per\n"
           "                      connection — the fairness quota\n"
           "                      (default 32 in TCP mode, 0 = only\n"
           "                      the global bound; stdin default 0)\n"
           "  --max-connections n simultaneous TCP connections; more\n"
           "                      wait in the accept backlog\n"
           "                      (default 64)\n"
           "  --request-timeout-ms n\n"
           "                      per-request deadline; a request\n"
           "                      that misses it is answered with a\n"
           "                      structured timeout error (default\n"
           "                      0 = none)\n"
           "  --max-line-bytes n  longest accepted request line;\n"
           "                      longer lines get a structured\n"
           "                      error (default 1048576; 0 = no\n"
           "                      limit)\n"
           "  --plan-dir path     durable plan store shared by every\n"
           "                      request (see docs/CLI.md)\n"
           "  --list-failpoints   print the registered fault-\n"
           "                      injection site names (one per\n"
           "                      line, for GRAPHR_FAILPOINTS) and\n"
           "                      exit\n"
           "  --help              this text\n"
           "\n"
           "requests (one JSON object per line; full grammar in\n"
           "docs/CLI.md):\n"
           "  {\"id\":\"r1\",\"type\":\"run\",\"workload\":\"pagerank\","
           "\"backend\":\"graphr\",\"dataset\":\"wiki-vote\","
           "\"scale\":4}\n"
           "  {\"id\":\"s1\",\"type\":\"sweep\",\"workloads\":[\"all\"],"
           "\"datasets\":[\"wiki-vote\"],\"scale\":4}\n"
           "  {\"id\":\"p1\",\"type\":\"prepare\",\"datasets\":"
           "[\"wiki-vote\"],\"scale\":4}\n"
           "  {\"id\":\"q1\",\"type\":\"status\"}\n";
}

ServeCliOptions
parseServeCli(const std::vector<std::string> &args)
{
    using driver::DriverError;
    ServeCliOptions opts;
    auto next = [&args](std::size_t &i,
                        const std::string &flag) -> const std::string & {
        if (i + 1 >= args.size())
            throw DriverError("flag " + flag + " needs a value");
        return args[++i];
    };
    auto parseU32 = [](const std::string &flag, const std::string &value,
                       std::uint32_t max) {
        driver::ParamMap map;
        map.set(flag, value);
        const std::uint32_t n = map.getU32(flag, 0);
        if (n > max)
            throw DriverError(flag + " must be in [0, " +
                              std::to_string(max) + "]");
        return n;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--stdin") {
            opts.port = -1;
        } else if (arg == "--port") {
            opts.port = static_cast<int>(
                parseU32(arg, next(i, arg), 65535));
        } else if (arg == "--jobs" || arg == "-j") {
            opts.server.jobs = parseU32(arg, next(i, arg), 1024);
        } else if (arg == "--queue-depth") {
            opts.server.queueDepth =
                parseU32(arg, next(i, arg), 1u << 20);
        } else if (arg == "--conn-queue-depth") {
            opts.server.connQueueDepth =
                parseU32(arg, next(i, arg), 1u << 20);
            opts.connDepthSet = true;
        } else if (arg == "--max-connections") {
            opts.maxConnections = parseU32(arg, next(i, arg), 4096);
            if (opts.maxConnections == 0)
                throw DriverError(
                    "--max-connections must be at least 1");
        } else if (arg == "--request-timeout-ms") {
            opts.server.requestTimeoutMs =
                parseU32(arg, next(i, arg), 86400000u);
        } else if (arg == "--max-line-bytes") {
            opts.server.maxLineBytes =
                parseU32(arg, next(i, arg), 1u << 30);
        } else if (arg == "--list-failpoints") {
            opts.listFailpoints = true;
        } else if (arg == "--plan-dir") {
            opts.server.store.planDir = next(i, arg);
            if (opts.server.store.planDir.empty())
                throw DriverError("--plan-dir got an empty path");
        } else if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else {
            throw DriverError("unknown flag '" + arg +
                              "' (see --help)");
        }
    }
    return opts;
}

/** TCP mode: the poll(2) event loop over shared warm state. */
int
serveTcp(service::Server &server, const ServeCliOptions &opts)
{
    net::Listener listener(opts.port, std::cerr);
    net::EventLoopOptions loop_opts;
    loop_opts.maxConnections = opts.maxConnections;
    loop_opts.maxLineBytes = opts.server.maxLineBytes;
    net::EventLoop loop(server, listener, loop_opts, std::cerr);
    loop.run();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        ServeCliOptions opts = parseServeCli(
            std::vector<std::string>(argv + 1, argv + argc));
        // TCP mode defaults the per-connection quota on: that is the
        // fairness mechanism between simultaneous clients. The lone
        // stdin stream keeps the historical global-only bound.
        if (opts.port >= 0 && !opts.connDepthSet)
            opts.server.connQueueDepth = 32;
        if (opts.help) {
            std::cout << usageText();
            return 0;
        }
        if (opts.listFailpoints) {
            // Machine-readable worklist for tests/chaos.sh: the
            // sweep enumerates sites from the binary under test, so
            // a new site cannot be forgotten by the suite.
            for (const std::string_view site :
                 failpoint::knownSites())
                std::cout << site << "\n";
            return 0;
        }

        service::Server server(opts.server);
        const ServerRegistration registration(server);
        installSignalHandlers();

        if (opts.port < 0) {
            // Serve stdin through the fd buffers rather than
            // std::cin, so the stop-flag polling (graceful SIGTERM
            // drain) covers a read blocked on the pipe too.
            service::FdInBuf inbuf(STDIN_FILENO, &server.stopFlag());
            service::FdOutBuf outbuf(STDOUT_FILENO,
                                     &server.stopFlag());
            std::istream in(&inbuf);
            std::ostream out(&outbuf);
            server.serve(in, out);
        } else {
            serveTcp(server, opts);
        }
        return 0;
    } catch (const driver::DriverError &err) {
        std::cerr << "error: " << err.what() << "\n\n"
                  << "run 'graphr_serve --help' for usage\n";
        return 1;
    }
}
