/**
 * @file
 * graphr_serve: the long-lived batch-serving daemon.
 *
 * Where graphr_run pays process start-up, dataset resolution and plan
 * preparation per invocation, graphr_serve keeps that state resident
 * and answers a stream of JSONL requests against it — the online half
 * of GraphR's offline/online split, amortised across requests:
 *
 *   printf '%s\n' \
 *     '{"id":"r1","type":"run","dataset":"wiki-vote","scale":4}' \
 *     '{"id":"q1","type":"status"}' | graphr_serve --stdin
 *
 *   graphr_serve --port 7447 --jobs 4 --plan-dir plans/
 *
 * One response line per request, ids echoed, admission order. TCP
 * mode serves loopback connections one at a time (a connection owns
 * the warm state until it closes; the next accept reuses it).
 * SIGTERM/SIGINT and EOF both drain gracefully: in-flight requests
 * finish, every pending response is flushed, then the process exits.
 * See docs/CLI.md for the full request grammar.
 */

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/failpoint.hh"
#include "driver/params.hh"
#include "service/fd_stream.hh"
#include "service/server.hh"

namespace
{

using namespace graphr;

std::atomic<service::Server *> g_server{nullptr};

/** SIGTERM/SIGINT: ask the server to drain (lock-free store only). */
void
onSignal(int)
{
    if (service::Server *server = g_server.load())
        server->requestStop();
}

/** No SA_RESTART: a signal must interrupt blocked read()/accept(). */
void
installSignalHandlers()
{
    struct sigaction action = {};
    action.sa_handler = onSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
    // A TCP client that disconnects before reading its responses must
    // surface as a write error (EPIPE -> clean session end), not kill
    // the daemon and its warm caches with the default SIGPIPE action.
    ::signal(SIGPIPE, SIG_IGN);
}

/** Detaches the signal handlers' server pointer before the Server is
 *  destroyed (including during exception unwinding), so a late
 *  signal cannot touch a dead object. */
struct ServerRegistration
{
    explicit ServerRegistration(service::Server &server)
    {
        g_server.store(&server);
    }
    ~ServerRegistration() { g_server.store(nullptr); }
};

struct ServeCliOptions
{
    service::ServeOptions server;
    /** TCP port to listen on (loopback); negative = stdin mode. */
    int port = -1;
    bool help = false;
    bool listFailpoints = false;
};

std::string
usageText()
{
    return "graphr_serve — long-lived GraphR batch-serving daemon\n"
           "\n"
           "usage: graphr_serve [--stdin | --port N] [flags]\n"
           "\n"
           "flags:\n"
           "  --stdin             serve JSONL requests from stdin,\n"
           "                      responses to stdout (the default)\n"
           "  --port n            listen on 127.0.0.1:n instead (one\n"
           "                      connection at a time; 0 = pick a\n"
           "                      free port, printed to stderr)\n"
           "  --jobs n            worker threads executing requests\n"
           "                      (default 1; 0 = hardware threads)\n"
           "  --queue-depth n     max outstanding requests before\n"
           "                      admission rejects (default 256)\n"
           "  --request-timeout-ms n\n"
           "                      per-request deadline; a request\n"
           "                      that misses it is answered with a\n"
           "                      structured timeout error (default\n"
           "                      0 = none)\n"
           "  --max-line-bytes n  longest accepted request line;\n"
           "                      longer lines get a structured\n"
           "                      error (default 1048576; 0 = no\n"
           "                      limit)\n"
           "  --plan-dir path     durable plan store shared by every\n"
           "                      request (see docs/CLI.md)\n"
           "  --list-failpoints   print the registered fault-\n"
           "                      injection site names (one per\n"
           "                      line, for GRAPHR_FAILPOINTS) and\n"
           "                      exit\n"
           "  --help              this text\n"
           "\n"
           "requests (one JSON object per line; full grammar in\n"
           "docs/CLI.md):\n"
           "  {\"id\":\"r1\",\"type\":\"run\",\"workload\":\"pagerank\","
           "\"backend\":\"graphr\",\"dataset\":\"wiki-vote\","
           "\"scale\":4}\n"
           "  {\"id\":\"s1\",\"type\":\"sweep\",\"workloads\":[\"all\"],"
           "\"datasets\":[\"wiki-vote\"],\"scale\":4}\n"
           "  {\"id\":\"p1\",\"type\":\"prepare\",\"datasets\":"
           "[\"wiki-vote\"],\"scale\":4}\n"
           "  {\"id\":\"q1\",\"type\":\"status\"}\n";
}

ServeCliOptions
parseServeCli(const std::vector<std::string> &args)
{
    using driver::DriverError;
    ServeCliOptions opts;
    auto next = [&args](std::size_t &i,
                        const std::string &flag) -> const std::string & {
        if (i + 1 >= args.size())
            throw DriverError("flag " + flag + " needs a value");
        return args[++i];
    };
    auto parseU32 = [](const std::string &flag, const std::string &value,
                       std::uint32_t max) {
        driver::ParamMap map;
        map.set(flag, value);
        const std::uint32_t n = map.getU32(flag, 0);
        if (n > max)
            throw DriverError(flag + " must be in [0, " +
                              std::to_string(max) + "]");
        return n;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--stdin") {
            opts.port = -1;
        } else if (arg == "--port") {
            opts.port = static_cast<int>(
                parseU32(arg, next(i, arg), 65535));
        } else if (arg == "--jobs" || arg == "-j") {
            opts.server.jobs = parseU32(arg, next(i, arg), 1024);
        } else if (arg == "--queue-depth") {
            opts.server.queueDepth =
                parseU32(arg, next(i, arg), 1u << 20);
        } else if (arg == "--request-timeout-ms") {
            opts.server.requestTimeoutMs =
                parseU32(arg, next(i, arg), 86400000u);
        } else if (arg == "--max-line-bytes") {
            opts.server.maxLineBytes =
                parseU32(arg, next(i, arg), 1u << 30);
        } else if (arg == "--list-failpoints") {
            opts.listFailpoints = true;
        } else if (arg == "--plan-dir") {
            opts.server.store.planDir = next(i, arg);
            if (opts.server.store.planDir.empty())
                throw DriverError("--plan-dir got an empty path");
        } else if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else {
            throw DriverError("unknown flag '" + arg +
                              "' (see --help)");
        }
    }
    return opts;
}

/** Listen on loopback:port; returns the listening fd or throws. */
int
listenLoopback(int port, std::ostream &log)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw driver::DriverError("cannot create socket: " +
                                  std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        const std::string what = std::strerror(errno);
        ::close(fd);
        throw driver::DriverError("cannot listen on 127.0.0.1:" +
                                  std::to_string(port) + ": " + what);
    }

    sockaddr_in bound = {};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port = ntohs(bound.sin_port);
    log << "graphr_serve listening on 127.0.0.1:" << port << "\n"
        << std::flush;
    return fd;
}

/** Accept loop: one connection at a time over shared warm state. */
int
serveTcp(service::Server &server, int port)
{
    const int listen_fd = listenLoopback(port, std::cerr);
    while (!server.stopRequested()) {
        // Poll before accepting so a SIGTERM racing the blocking
        // accept() still stops the loop within one poll tick.
        if (!service::waitReadable(listen_fd, &server.stopFlag()))
            break;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue; // signal: loop re-checks the stop flag
            std::cerr << "accept failed: " << std::strerror(errno)
                      << "\n";
            break;
        }
        service::FdInBuf inbuf(fd, &server.stopFlag());
        service::FdOutBuf outbuf(fd, &server.stopFlag());
        std::istream in(&inbuf);
        std::ostream out(&outbuf);
        server.serve(in, out);
        ::close(fd);
    }
    ::close(listen_fd);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const ServeCliOptions opts = parseServeCli(
            std::vector<std::string>(argv + 1, argv + argc));
        if (opts.help) {
            std::cout << usageText();
            return 0;
        }
        if (opts.listFailpoints) {
            // Machine-readable worklist for tests/chaos.sh: the
            // sweep enumerates sites from the binary under test, so
            // a new site cannot be forgotten by the suite.
            for (const std::string_view site :
                 failpoint::knownSites())
                std::cout << site << "\n";
            return 0;
        }

        service::Server server(opts.server);
        const ServerRegistration registration(server);
        installSignalHandlers();

        if (opts.port < 0) {
            // Serve stdin through the fd buffers rather than
            // std::cin, so the stop-flag polling (graceful SIGTERM
            // drain) covers a read blocked on the pipe too.
            service::FdInBuf inbuf(STDIN_FILENO, &server.stopFlag());
            service::FdOutBuf outbuf(STDOUT_FILENO,
                                     &server.stopFlag());
            std::istream in(&inbuf);
            std::ostream out(&outbuf);
            server.serve(in, out);
        } else {
            serveTcp(server, opts.port);
        }
        return 0;
    } catch (const driver::DriverError &err) {
        std::cerr << "error: " << err.what() << "\n\n"
                  << "run 'graphr_serve --help' for usage\n";
        return 1;
    }
}
