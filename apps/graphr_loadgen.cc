/**
 * @file
 * graphr_loadgen: trace-replay load generator for graphr_serve.
 *
 * Opens C concurrent connections to a running daemon and replays a
 * request trace on each — closed-loop (send, await the response,
 * send the next), optionally paced to a target per-connection rate.
 * Reports one JSON line with end-to-end latency percentiles and
 * per-connection fairness stats, which is what the perf suite's
 * serve.concurrent scenario and the CI loadgen smoke consume:
 *
 *   graphr_serve --port 7447 --jobs 4 &
 *   graphr_loadgen --port 7447 --connections 8 --requests 50
 *
 * The trace file (--trace) holds one request template per line —
 * the graphr_serve grammar minus the "id" member, which loadgen
 * injects as "c<conn>-r<seq>" so every response can be matched to
 * its request. Connections replay the trace round-robin, each
 * starting at its own offset so simultaneous clients exercise
 * different requests. Without --trace, a built-in single-line trace
 * (a small pagerank run) is used.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hh"
#include "common/json.hh"
#include "driver/driver.hh"
#include "driver/params.hh"

namespace
{

using namespace graphr;
using Clock = std::chrono::steady_clock;

struct LoadgenOptions
{
    int port = -1;
    std::uint32_t connections = 8;
    std::uint32_t requests = 50; ///< per connection
    std::string tracePath;
    double ratePerConn = 0.0; ///< requests/s per connection (0 = max)
    std::uint32_t timeoutMs = 60000;
    bool help = false;
};

std::string
usageText()
{
    return "graphr_loadgen — trace-replay load generator for "
           "graphr_serve\n"
           "\n"
           "usage: graphr_loadgen --port N [flags]\n"
           "\n"
           "flags:\n"
           "  --port n         daemon port on 127.0.0.1 (required)\n"
           "  --connections n  concurrent connections (default 8)\n"
           "  --requests n     requests per connection (default 50)\n"
           "  --trace path     JSONL request templates without the\n"
           "                   \"id\" member (loadgen injects it);\n"
           "                   replayed round-robin per connection.\n"
           "                   Default: a built-in small pagerank run\n"
           "  --rate r         target requests/s per connection\n"
           "                   (default 0 = closed-loop, as fast as\n"
           "                   responses return)\n"
           "  --timeout-ms n   per-response receive timeout (default\n"
           "                   60000)\n"
           "  --help           this text\n"
           "\n"
           "Output: one JSON line on stdout — totals, wall time,\n"
           "latency min/p50/p99/max, per-connection counters and the\n"
           "fairness spread (max ok - min ok across connections).\n";
}

LoadgenOptions
parseCli(const std::vector<std::string> &args)
{
    using driver::DriverError;
    LoadgenOptions opts;
    auto next = [&args](std::size_t &i,
                        const std::string &flag) -> const std::string & {
        if (i + 1 >= args.size())
            throw DriverError("flag " + flag + " needs a value");
        return args[++i];
    };
    auto parseU32 = [](const std::string &flag,
                       const std::string &value, std::uint32_t max) {
        driver::ParamMap map;
        map.set(flag, value);
        const std::uint32_t n = map.getU32(flag, 0);
        if (n > max)
            throw DriverError(flag + " must be in [0, " +
                              std::to_string(max) + "]");
        return n;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--port") {
            opts.port = static_cast<int>(
                parseU32(arg, next(i, arg), 65535));
        } else if (arg == "--connections") {
            opts.connections = parseU32(arg, next(i, arg), 4096);
            if (opts.connections == 0)
                throw DriverError("--connections must be at least 1");
        } else if (arg == "--requests") {
            opts.requests = parseU32(arg, next(i, arg), 1u << 20);
            if (opts.requests == 0)
                throw DriverError("--requests must be at least 1");
        } else if (arg == "--trace") {
            opts.tracePath = next(i, arg);
        } else if (arg == "--rate") {
            driver::ParamMap map;
            map.set(arg, next(i, arg));
            opts.ratePerConn = map.getDouble(arg, 0.0);
            if (opts.ratePerConn < 0.0)
                throw DriverError("--rate must be >= 0");
        } else if (arg == "--timeout-ms") {
            opts.timeoutMs = parseU32(arg, next(i, arg), 86400000u);
        } else if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else {
            throw DriverError("unknown flag '" + arg +
                              "' (see --help)");
        }
    }
    if (!opts.help && opts.port < 0)
        throw DriverError("--port is required (see --help)");
    return opts;
}

std::vector<std::string>
loadTrace(const std::string &path)
{
    if (path.empty()) {
        return {"{\"type\":\"run\",\"workload\":\"pagerank\","
                "\"backend\":\"graphr\",\"dataset\":\"wiki-vote\","
                "\"scale\":2}"};
    }
    std::ifstream in(path);
    if (!in)
        throw driver::DriverError("cannot open --trace file '" +
                                  path + "'");
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' '))
            line.pop_back();
        if (!line.empty())
            lines.push_back(line);
    }
    if (lines.empty())
        throw driver::DriverError("--trace file '" + path +
                                  "' has no request lines");
    return lines;
}

/** Splice `"id":"..."` in as the first member of a template line. */
std::string
withId(const std::string &tmpl, const std::string &id)
{
    const std::size_t brace = tmpl.find('{');
    if (brace == std::string::npos)
        throw driver::DriverError("trace line is not a JSON object: " +
                                  tmpl);
    const bool empty_object =
        tmpl.find_first_not_of(" \t", brace + 1) != std::string::npos &&
        tmpl[tmpl.find_first_not_of(" \t", brace + 1)] == '}';
    std::string out = tmpl.substr(0, brace + 1);
    out += "\"id\":\"" + id + "\"";
    if (!empty_object)
        out += ",";
    out += tmpl.substr(brace + 1);
    return out;
}

/** What one connection's worker thread measured. */
struct ConnResult
{
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;    ///< responses with "ok":false
    std::uint64_t timedOut = 0;  ///< receive timeouts
    std::uint64_t transport = 0; ///< connect/send/recv failures
    std::vector<std::uint64_t> latenciesNs;
    std::string firstFailure; ///< first transport failure message
};

void
runConnection(const LoadgenOptions &opts,
              const std::vector<std::string> &trace,
              std::uint32_t conn_index, ConnResult &result)
{
    result.latenciesNs.reserve(opts.requests);
    try {
        client::Client client(opts.port);
        if (opts.timeoutMs != 0)
            client.setRecvTimeoutMs(
                static_cast<int>(opts.timeoutMs));
        const Clock::time_point start = Clock::now();
        for (std::uint32_t r = 0; r < opts.requests; ++r) {
            if (opts.ratePerConn > 0.0) {
                // Paced replay: request r is due at start + r/rate;
                // a response that came back early waits, a late one
                // lets the loop fire immediately (open-loop catch-up
                // is deliberately not attempted).
                const auto due =
                    start +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(r) /
                            opts.ratePerConn));
                std::this_thread::sleep_until(due);
            }
            const std::string id = "c" +
                                   std::to_string(conn_index) + "-r" +
                                   std::to_string(r);
            // Each connection starts the trace at its own offset so
            // C simultaneous clients exercise different lines.
            const std::string &tmpl =
                trace[(conn_index + r) % trace.size()];
            const Clock::time_point t0 = Clock::now();
            std::string response;
            try {
                response = client.request(withId(tmpl, id));
            } catch (const client::ClientError &err) {
                ++result.sent;
                const std::string what = err.what();
                if (what.find("timed out") != std::string::npos) {
                    ++result.timedOut;
                } else {
                    ++result.transport;
                    if (result.firstFailure.empty())
                        result.firstFailure = what;
                }
                // The stream is now desynchronised (a late response
                // would be matched to the wrong request); stop this
                // connection rather than report garbage latencies.
                return;
            }
            const auto elapsed = Clock::now() - t0;
            ++result.sent;
            result.latenciesNs.push_back(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    elapsed)
                    .count()));
            const bool id_echoed =
                response.find("\"id\":\"" + id + "\"") !=
                std::string::npos;
            if (id_echoed &&
                response.find("\"ok\":true") != std::string::npos)
                ++result.ok;
            else
                ++result.errors;
        }
    } catch (const client::ClientError &err) {
        ++result.transport;
        result.firstFailure = err.what();
    }
}

double
quantileMs(std::vector<std::uint64_t> &sorted_ns, double q)
{
    if (sorted_ns.empty())
        return 0.0;
    const std::size_t index = static_cast<std::size_t>(
        q * static_cast<double>(sorted_ns.size() - 1) + 0.5);
    return static_cast<double>(sorted_ns[index]) / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const LoadgenOptions opts = parseCli(
            std::vector<std::string>(argv + 1, argv + argc));
        if (opts.help) {
            std::cout << usageText();
            return 0;
        }
        const std::vector<std::string> trace =
            loadTrace(opts.tracePath);

        std::vector<ConnResult> results(opts.connections);
        const Clock::time_point wall0 = Clock::now();
        {
            std::vector<std::thread> threads;
            threads.reserve(opts.connections);
            for (std::uint32_t c = 0; c < opts.connections; ++c) {
                threads.emplace_back([&opts, &trace, &results, c] {
                    runConnection(opts, trace, c, results[c]);
                });
            }
            for (std::thread &t : threads)
                t.join();
        }
        const double wall_ms =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - wall0)
                    .count()) /
            1e6;

        std::uint64_t sent = 0;
        std::uint64_t ok = 0;
        std::uint64_t errors = 0;
        std::uint64_t timed_out = 0;
        std::uint64_t transport = 0;
        std::uint64_t min_ok = UINT64_MAX;
        std::uint64_t max_ok = 0;
        std::vector<std::uint64_t> all_ns;
        std::string first_failure;
        for (const ConnResult &r : results) {
            sent += r.sent;
            ok += r.ok;
            errors += r.errors;
            timed_out += r.timedOut;
            transport += r.transport;
            min_ok = std::min(min_ok, r.ok);
            max_ok = std::max(max_ok, r.ok);
            all_ns.insert(all_ns.end(), r.latenciesNs.begin(),
                          r.latenciesNs.end());
            if (first_failure.empty() && !r.firstFailure.empty())
                first_failure = r.firstFailure;
        }
        std::sort(all_ns.begin(), all_ns.end());

        std::ostringstream os;
        {
            JsonWriter w(os, /*indent=*/0);
            w.beginObject();
            w.field("connections",
                    static_cast<std::uint64_t>(opts.connections));
            w.field("requests_per_conn",
                    static_cast<std::uint64_t>(opts.requests));
            w.field("sent", sent);
            w.field("ok", ok);
            w.field("errors", errors);
            w.field("timed_out", timed_out);
            w.field("transport_failures", transport);
            if (!first_failure.empty())
                w.field("first_failure", first_failure);
            w.field("wall_ms", wall_ms);
            w.field("requests_per_s",
                    wall_ms > 0.0
                        ? static_cast<double>(sent) * 1e3 / wall_ms
                        : 0.0);
            w.key("latency_ms");
            w.beginObject();
            w.field("min", all_ns.empty()
                               ? 0.0
                               : static_cast<double>(all_ns.front()) /
                                     1e6);
            w.field("p50", quantileMs(all_ns, 0.50));
            w.field("p99", quantileMs(all_ns, 0.99));
            w.field("max", all_ns.empty()
                               ? 0.0
                               : static_cast<double>(all_ns.back()) /
                                     1e6);
            w.endObject();
            w.key("per_connection");
            w.beginArray();
            for (std::size_t c = 0; c < results.size(); ++c) {
                std::vector<std::uint64_t> ns =
                    results[c].latenciesNs;
                std::sort(ns.begin(), ns.end());
                w.beginObject();
                w.field("conn", static_cast<std::uint64_t>(c));
                w.field("sent", results[c].sent);
                w.field("ok", results[c].ok);
                w.field("errors", results[c].errors);
                w.field("p50_ms", quantileMs(ns, 0.50));
                w.endObject();
            }
            w.endArray();
            // The fairness contract: under identical closed-loop
            // clients, per-connection completions should stay close
            // — a large spread means someone was starved.
            w.key("fairness");
            w.beginObject();
            const std::uint64_t lo =
                min_ok == UINT64_MAX ? 0 : min_ok;
            w.field("min_ok", lo);
            w.field("max_ok", max_ok);
            w.field("spread", max_ok - lo);
            w.endObject();
            w.endObject();
        }
        std::cout << os.str() << "\n";
        // Nonzero exit when nothing succeeded at all — a smoke that
        // points at a dead port must fail loudly.
        return ok > 0 ? 0 : 2;
    } catch (const driver::DriverError &err) {
        std::cerr << "error: " << err.what() << "\n\n"
                  << "run 'graphr_loadgen --help' for usage\n";
        return 1;
    }
}
